//! Precompiled stencil kernel plans: bind once, execute many.
//!
//! The generic brick kernel ([`crate::apply_bricks_gather`]) re-gathers
//! a `(b+2r)³` padded halo block for every brick on every timestep —
//! roughly 2× memory traffic for 8³ bricks at radius 1 — and re-derives
//! per-axis resolve tables each call. A [`KernelPlan`] does that work
//! once per `(BrickInfo, StencilShape, field)` binding:
//!
//! * per brick, the 27 adjacency codes are resolved to direct *element
//!   base offsets* into the storage slab (`neighbor_brick * step +
//!   field_base`) at plan time, never per element;
//! * the padded-halo gather is compiled into a flat list of [`CopySeg`]
//!   row-segment copies (destination offset in the block, adjacency
//!   code, source offset, length) — executing a step is `memcpy`s into
//!   a thread-local arena block followed by a dense kernel, with no
//!   per-step planning, wrapping arithmetic or allocation;
//! * every tap becomes one precomputed flat offset into the padded
//!   block, and the kernel runs taps *innermost* against a
//!   row-sized register accumulator (monomorphized for the common
//!   brick widths 4/8/16), so the hot loop is pure mul-adds.
//!
//! Per output point the accumulator adds tap contributions in the
//! shape's tap order starting from zero — exactly the floating-point
//! op sequence of [`crate::apply_bricks_serial`] — so the planned
//! engine is **bit-identical** to the serial reference for every
//! shape, which the property tests in `tests/proptest_kernels.rs` pin
//! down. The canonical 7-point star instead dispatches to the
//! specialized star7 kernel (itself bit-identical to the reference).
//!
//! [`VarCoefPlan`] applies the same bind-once treatment to the
//! variable-coefficient 7-point kernel of [`crate::varcoef`].

use brick::{BrickInfo, BrickStorage, NO_BRICK};
use rayon::prelude::*;

use crate::shape::{star7_coeffs, StencilShape};

/// Neighbor-base sentinel for a missing neighbor brick. Executing a
/// plan over a brick whose stencil crosses a missing neighbor panics.
const MISSING: usize = usize::MAX;

/// Interior/boundary split of a plan's compute set, with a reusable
/// per-brick readiness mask — the stencil side of the overlap
/// scheduler. The interior sub-plan (bricks whose stencil reads no
/// ghost data) can run while halo messages are on the wire; boundary
/// bricks are staged into the readiness mask in batches as their ghost
/// dependencies complete and executed through the owning
/// [`KernelPlan`] / [`VarCoefPlan`] with no per-batch allocation.
pub struct PlanSplit {
    /// `compute ∧ interior`: the sub-plan safe to run before any
    /// message arrives.
    interior: Vec<bool>,
    /// `compute ∧ ¬interior` brick ids, ascending.
    boundary: Vec<u32>,
    /// Readiness mask for the current boundary batch.
    stage: Vec<bool>,
    /// Bricks staged in the current batch (for O(batch) clearing).
    staged: Vec<u32>,
}

impl PlanSplit {
    /// Split `compute` against `interior_mask` (per-brick, e.g.
    /// `BrickDecomp::interior_mask`). Masks must be the same length.
    pub fn new(interior_mask: &[bool], compute: &[bool]) -> PlanSplit {
        assert_eq!(interior_mask.len(), compute.len(), "mask length mismatch");
        let interior: Vec<bool> =
            interior_mask.iter().zip(compute).map(|(&i, &c)| i && c).collect();
        let boundary: Vec<u32> = compute
            .iter()
            .zip(interior_mask)
            .enumerate()
            .filter(|(_, (&c, &i))| c && !i)
            .map(|(b, _)| b as u32)
            .collect();
        let stage = vec![false; compute.len()];
        PlanSplit { interior, boundary, stage, staged: Vec::new() }
    }

    /// The interior sub-plan's compute mask.
    pub fn interior(&self) -> &[bool] {
        &self.interior
    }

    /// Boundary brick ids (ascending) — the bricks whose readiness the
    /// scheduler tracks.
    pub fn boundary(&self) -> &[u32] {
        &self.boundary
    }

    /// Number of interior bricks in the split.
    pub fn interior_count(&self) -> usize {
        self.interior.iter().filter(|&&b| b).count()
    }

    /// Mark a batch of boundary bricks ready; returns the readiness
    /// mask to hand to `execute`. Call [`PlanSplit::clear_batch`] after
    /// executing. Staging the same brick twice in one batch is allowed.
    pub fn stage_batch(&mut self, bricks: &[u32]) -> &[bool] {
        for &b in bricks {
            debug_assert!(
                !self.interior[b as usize],
                "staged brick {b} is interior; it was already computed"
            );
            self.stage[b as usize] = true;
            self.staged.push(b);
        }
        &self.stage
    }

    /// The current batch's readiness mask.
    pub fn batch_mask(&self) -> &[bool] {
        &self.stage
    }

    /// Reset the readiness mask after executing a batch.
    pub fn clear_batch(&mut self) {
        for b in self.staged.drain(..) {
            self.stage[b as usize] = false;
        }
    }
}

/// One tap's read pattern for one brick row, brick-independent (the
/// [`VarCoefPlan`] executor's descriptor): the source brick is named by
/// adjacency *code*, resolved through the per-brick neighbor-base
/// table at execute time with one lookup.
#[derive(Clone, Copy, Debug)]
struct TapSeg {
    /// Flat offset of the source row start within the source brick.
    base: u32,
    /// Adjacency code of the source brick for in-x-range reads (x trit
    /// zero); the ±x face columns use `code + 2` / `code + 1`.
    code: u8,
    /// x offset of the tap.
    shift: i8,
}

/// One gather-copy descriptor for the padded halo block: at execute
/// time `block[dst..dst+len]` is filled from the brick named by
/// adjacency `code`, starting at in-brick element offset `src`.
#[derive(Clone, Copy, Debug)]
struct CopySeg {
    dst: u32,
    src: u32,
    len: u16,
    code: u8,
}

/// Execution strategy selected at plan time.
enum Exec {
    /// Canonical 7-point star: the specialized hoisted-row kernel.
    Star7 { c: [f64; 7], info: BrickInfo<3> },
    /// Any other shape: gather a `(bx+2r)·(by+2r)·(bz+2r)` halo block
    /// through the precompiled copy list, then run the dense
    /// taps-innermost kernel (bit-identical accumulation order).
    Block {
        wx: usize,
        wy: usize,
        block_len: usize,
        copies: Vec<CopySeg>,
        /// `(flat offset into the padded block, coefficient)` per tap,
        /// in shape tap order.
        taps: Vec<(u32, f64)>,
        nbase: Vec<usize>,
    },
}

/// A stencil kernel compiled for one `(BrickInfo, StencilShape, field)`
/// binding: build it once per experiment, then [`KernelPlan::execute`]
/// it every timestep with no per-step planning, gathering or
/// allocation.
pub struct KernelPlan {
    bx: usize,
    by: usize,
    bz: usize,
    elems: usize,
    step: usize,
    fields: usize,
    field: usize,
    field_base: usize,
    bricks: usize,
    exec: Exec,
}

impl KernelPlan {
    /// Compile a plan for applying `shape` to field `field` of storages
    /// with `fields` interleaved fields laid out by `info`.
    pub fn new(
        info: &BrickInfo<3>,
        shape: &StencilShape,
        fields: usize,
        field: usize,
    ) -> KernelPlan {
        assert!(field < fields, "field index out of range");
        let bd = info.brick_dims();
        let [bx, by, bz] = bd.extents();
        let r = shape.radius();
        assert!(
            r <= bx && r <= by && r <= bz,
            "stencil radius exceeds brick extent"
        );
        let elems = bd.elements();
        let step = elems * fields;
        let field_base = field * elems;
        let exec = if let Some(c) = star7_coeffs(shape) {
            Exec::Star7 { c, info: info.clone() }
        } else {
            let (wx, wy, wz) = (bx + 2 * r, by + 2 * r, bz + 2 * r);
            let taps = shape
                .taps()
                .iter()
                .map(|&(o, c)| {
                    let off = ((o[2] as isize + r as isize) as usize * wy
                        + (o[1] as isize + r as isize) as usize)
                        * wx
                        + (o[0] as isize + r as isize) as usize;
                    (off as u32, c)
                })
                .collect();
            Exec::Block {
                wx,
                wy,
                block_len: wx * wy * wz,
                copies: build_copies(bx, by, bz, r),
                taps,
                nbase: build_nbase(info, step, field_base),
            }
        };
        KernelPlan {
            bx,
            by,
            bz,
            elems,
            step,
            fields,
            field,
            field_base,
            bricks: info.bricks(),
            exec,
        }
    }

    /// The field index this plan was compiled for.
    pub fn field(&self) -> usize {
        self.field
    }

    /// Split this plan's compute set into interior/boundary sub-plans
    /// for overlap scheduling (masks must cover this plan's bricks).
    /// The plan's radius assertion (`r ≤` every brick extent) is what
    /// makes a boundary brick's dependencies exactly its 27-adjacency
    /// neighbor bricks, so completing those receives makes it safe.
    pub fn split(&self, interior_mask: &[bool], compute: &[bool]) -> PlanSplit {
        assert_eq!(interior_mask.len(), self.bricks, "mask length mismatch");
        PlanSplit::new(interior_mask, compute)
    }

    /// Apply the planned stencil to every brick selected by
    /// `compute[b]`, reading `input` and writing `output` (both must
    /// match the geometry the plan was compiled for).
    pub fn execute(&self, input: &BrickStorage, output: &mut BrickStorage, compute: &[bool]) {
        assert_eq!(compute.len(), self.bricks, "compute mask length mismatch");
        assert_eq!(input.fields(), self.fields, "input field count mismatch");
        assert_eq!(output.fields(), self.fields, "output field count mismatch");
        assert_eq!(input.elements_per_brick(), self.elems, "brick geometry mismatch");
        assert_eq!(input.bricks(), self.bricks, "brick count mismatch");
        assert_eq!(output.bricks(), self.bricks, "brick count mismatch");
        match &self.exec {
            Exec::Star7 { c, info } => {
                crate::brickstencil::apply_star7_bricks(c, info, input, output, compute, self.field);
            }
            Exec::Block { wx, wy, block_len, copies, taps, nbase } => {
                self.execute_block(*wx, *wy, *block_len, copies, taps, nbase, input, output, compute);
            }
        }
    }

    /// [`KernelPlan::execute`] wrapped in a telemetry scope: the wall
    /// time of the planned step is really measured and charged as
    /// [`telemetry::Phase::Compute`] under a `kernel:plan` span, and
    /// the number of bricks the mask selected is counted. Numerically
    /// identical to `execute` — profiling never changes the kernel.
    pub fn execute_profiled(
        &self,
        input: &BrickStorage,
        output: &mut BrickStorage,
        compute: &[bool],
        rec: &mut telemetry::Recorder,
    ) {
        rec.open("kernel:plan");
        let t0 = std::time::Instant::now();
        self.execute(input, output, compute);
        rec.charge(telemetry::Phase::Compute, t0.elapsed().as_secs_f64());
        rec.count(
            "bricks_computed",
            compute.iter().filter(|&&c| c).count() as u64,
        );
        rec.close();
    }

    /// Block executor: gather the padded halo block through the copy
    /// list into the thread-local arena, then run the dense kernel.
    /// Bricks are distributed over threads.
    #[allow(clippy::too_many_arguments)]
    fn execute_block(
        &self,
        wx: usize,
        wy: usize,
        block_len: usize,
        copies: &[CopySeg],
        taps: &[(u32, f64)],
        nbase: &[usize],
        input: &BrickStorage,
        output: &mut BrickStorage,
        compute: &[bool],
    ) {
        let (bx, by, bz) = (self.bx, self.by, self.bz);
        let (elems, step, field_base) = (self.elems, self.step, self.field_base);
        let in_data = input.as_slice();

        output
            .as_mut_slice()
            .par_chunks_mut(step)
            .with_min_len(16)
            .enumerate()
            .filter(|(b, _)| compute[*b])
            .for_each(|(b, chunk)| {
                let bases = &nbase[b * 27..b * 27 + 27];
                let out = &mut chunk[field_base..field_base + elems];
                crate::arena::with_scratch(block_len, |block| {
                    for cs in copies {
                        let len = cs.len as usize;
                        let dst = &mut block[cs.dst as usize..cs.dst as usize + len];
                        let sb = bases[cs.code as usize];
                        if sb == MISSING {
                            // Poison instead of panicking: a shape whose
                            // taps never read this corner of the block
                            // stays correct (the serial reference would
                            // only panic on an actual read).
                            dst.fill(f64::NAN);
                        } else {
                            dst.copy_from_slice(&in_data[sb + cs.src as usize..][..len]);
                        }
                    }
                    match bx {
                        4 => block_rows::<4>(out, block, taps, by, bz, wx, wy),
                        8 => block_rows::<8>(out, block, taps, by, bz, wx, wy),
                        16 => block_rows::<16>(out, block, taps, by, bz, wx, wy),
                        _ => block_rows_dyn(out, block, taps, bx, by, bz, wx, wy),
                    }
                });
            });
    }
}

/// Dense taps-innermost kernel for the monomorphized brick widths: the
/// row accumulator is a `[f64; BX]` the compiler keeps in registers, so
/// each tap costs one broadcast-multiply-accumulate over the row.
fn block_rows<const BX: usize>(
    out: &mut [f64],
    block: &[f64],
    taps: &[(u32, f64)],
    by: usize,
    bz: usize,
    wx: usize,
    wy: usize,
) {
    for z in 0..bz {
        for y in 0..by {
            let rb = (z * wy + y) * wx;
            let mut acc = [0.0f64; BX];
            for &(off, c) in taps {
                let src = &block[rb + off as usize..rb + off as usize + BX];
                for (a, &v) in acc.iter_mut().zip(src) {
                    *a += c * v;
                }
            }
            out[(z * by + y) * BX..(z * by + y) * BX + BX].copy_from_slice(&acc);
        }
    }
}

/// Fallback for uncommon brick widths: accumulate straight into the
/// output row (same op order, the accumulator just lives in L1).
#[allow(clippy::too_many_arguments)]
fn block_rows_dyn(
    out: &mut [f64],
    block: &[f64],
    taps: &[(u32, f64)],
    bx: usize,
    by: usize,
    bz: usize,
    wx: usize,
    wy: usize,
) {
    for z in 0..bz {
        for y in 0..by {
            let rb = (z * wy + y) * wx;
            let orow = &mut out[(z * by + y) * bx..(z * by + y) * bx + bx];
            orow.fill(0.0);
            for &(off, c) in taps {
                let src = &block[rb + off as usize..rb + off as usize + bx];
                for (a, &v) in orow.iter_mut().zip(src) {
                    *a += c * v;
                }
            }
        }
    }
}

/// Copy list for the padded halo gather: each padded row `(z', y')`
/// splits into at most three x segments (−x face, interior, +x face),
/// each sourced from one adjacency code. Built once per plan.
fn build_copies(bx: usize, by: usize, bz: usize, r: usize) -> Vec<CopySeg> {
    let (wx, wy, wz) = (bx + 2 * r, by + 2 * r, bz + 2 * r);
    // (x' start, source x start, x trit, length)
    let mut xsegs: Vec<(usize, usize, usize, usize)> = Vec::new();
    if r > 0 {
        xsegs.push((0, bx - r, 2, r));
    }
    xsegs.push((r, 0, 0, bx));
    if r > 0 {
        xsegs.push((r + bx, 0, 1, r));
    }
    let mut copies = Vec::with_capacity(wy * wz * xsegs.len());
    for zp in 0..wz {
        let (tz, lz) = wrap(zp as isize - r as isize, bz);
        for yp in 0..wy {
            let (ty, ly) = wrap(yp as isize - r as isize, by);
            for &(xp, lx, tx, len) in &xsegs {
                copies.push(CopySeg {
                    dst: ((zp * wy + yp) * wx + xp) as u32,
                    src: ((lz * by + ly) * bx + lx) as u32,
                    len: len as u16,
                    code: (tx + 3 * (ty + 3 * tz)) as u8,
                });
            }
        }
    }
    copies
}

/// Brick-independent row-segment table: `by·bz` rows × `shape.points()`
/// segments, in shape tap order within each row.
fn build_segs(shape: &StencilShape, bx: usize, by: usize, bz: usize) -> Vec<TapSeg> {
    let mut segs = Vec::with_capacity(by * bz * shape.points());
    for z in 0..bz {
        for y in 0..by {
            for &(o, _) in shape.taps() {
                let (cy, ly) = wrap(y as isize + o[1] as isize, by);
                let (cz, lz) = wrap(z as isize + o[2] as isize, bz);
                segs.push(TapSeg {
                    base: ((lz * by + ly) * bx) as u32,
                    code: (3 * (cy + 3 * cz)) as u8,
                    shift: o[0],
                });
            }
        }
    }
    segs
}

/// Per-brick neighbor base table: for brick `b` and adjacency code `k`,
/// `nbase[b*27 + k]` is the element offset of the neighbor's field slab
/// in the storage (or [`MISSING`]). Resolved once at plan time.
fn build_nbase(info: &BrickInfo<3>, step: usize, field_base: usize) -> Vec<usize> {
    let bricks = info.bricks();
    let mut nbase = vec![MISSING; bricks * 27];
    for b in 0..bricks {
        let adj = info.adjacency_row(b as u32);
        for (code, &nb) in adj.iter().enumerate() {
            if nb != NO_BRICK {
                nbase[b * 27 + code] = nb as usize * step + field_base;
            }
        }
    }
    nbase
}

/// Resolve a shifted row coordinate to (trit, wrapped local): trit 0
/// in-brick, 1 the positive neighbor, 2 the negative neighbor.
fn wrap(p: isize, e: usize) -> (usize, usize) {
    if p < 0 {
        (2, (p + e as isize) as usize)
    } else if p >= e as isize {
        (1, (p - e as isize) as usize)
    } else {
        (0, p as usize)
    }
}

/// A compiled variable-coefficient 7-point kernel (see
/// [`crate::varcoef`] for the field-layout convention): neighbor bases
/// and row segments are resolved once, then
/// [`VarCoefPlan::execute`] replays them every step, reading the seven
/// coefficient fields at the output point.
pub struct VarCoefPlan {
    bx: usize,
    by: usize,
    bz: usize,
    elems: usize,
    in_step: usize,
    fields: usize,
    bricks: usize,
    /// 7 segments per row in the canonical (c, −x, +x, −y, +y, −z, +z)
    /// order; segment `j` of a row reads coefficient field `1 + j`.
    segs: Vec<TapSeg>,
    nbase: Vec<usize>,
}

/// The canonical variable-coefficient tap order (must match
/// [`crate::varcoef`]'s `OFFS`).
const VC_OFFS: [[i8; 3]; 7] = [
    [0, 0, 0],
    [-1, 0, 0],
    [1, 0, 0],
    [0, -1, 0],
    [0, 1, 0],
    [0, 0, -1],
    [0, 0, 1],
];

impl VarCoefPlan {
    /// Compile a plan for storages with `fields ≥ 8` interleaved fields
    /// laid out by `info` (field 0 the state, 1..=7 the coefficients).
    pub fn new(info: &BrickInfo<3>, fields: usize) -> VarCoefPlan {
        assert!(
            fields >= crate::varcoef::VARCOEF_FIELDS,
            "need state + 7 coefficient fields"
        );
        let bd = info.brick_dims();
        let [bx, by, bz] = bd.extents();
        assert!(bx >= 1 && by >= 1 && bz >= 1);
        let elems = bd.elements();
        let in_step = elems * fields;
        // Unit coefficients here; the per-point factors come from the
        // coefficient fields at execute time.
        let mut taps = Vec::with_capacity(7);
        for o in VC_OFFS {
            taps.push((o, 1.0));
        }
        let shape = StencilShape::new(taps);
        VarCoefPlan {
            bx,
            by,
            bz,
            elems,
            in_step,
            fields,
            bricks: info.bricks(),
            segs: build_segs(&shape, bx, by, bz),
            nbase: build_nbase(info, in_step, 0),
        }
    }

    /// Split this plan's compute set into interior/boundary sub-plans
    /// for overlap scheduling (see [`KernelPlan::split`]).
    pub fn split(&self, interior_mask: &[bool], compute: &[bool]) -> PlanSplit {
        assert_eq!(interior_mask.len(), self.bricks, "mask length mismatch");
        PlanSplit::new(interior_mask, compute)
    }

    /// Apply the planned variable-coefficient stencil to every brick
    /// selected by `compute[b]`, writing field 0 of `output`.
    pub fn execute(&self, input: &BrickStorage, output: &mut BrickStorage, compute: &[bool]) {
        assert_eq!(compute.len(), self.bricks, "compute mask length mismatch");
        assert_eq!(input.fields(), self.fields, "input field count mismatch");
        assert_eq!(input.elements_per_brick(), self.elems, "brick geometry mismatch");
        assert_eq!(output.elements_per_brick(), self.elems, "brick geometry mismatch");
        assert_eq!(input.bricks(), self.bricks, "brick count mismatch");
        let (bx, rows) = (self.bx, self.by * self.bz);
        let (elems, in_step) = (self.elems, self.in_step);
        let out_step = output.step();
        let in_data = input.as_slice();
        let (segs, nbase) = (&self.segs, &self.nbase);

        output
            .as_mut_slice()
            .par_chunks_mut(out_step)
            .with_min_len(16)
            .enumerate()
            .filter(|(b, _)| compute[*b])
            .for_each(|(b, chunk)| {
                let bases = &nbase[b * 27..b * 27 + 27];
                let coef_base = b * in_step + elems; // field 1 starts here
                let out = &mut chunk[..elems];
                for (row, out_row) in out.chunks_exact_mut(bx).enumerate().take(rows) {
                    out_row.fill(0.0);
                    let orow = row * bx;
                    for (j, seg) in segs[row * 7..(row + 1) * 7].iter().enumerate() {
                        let coef = &in_data[coef_base + j * elems + orow..][..bx];
                        let shift = seg.shift as isize;
                        let lo = (-shift).max(0) as usize;
                        let hi = (bx as isize - shift.max(0)) as usize;
                        let rb = seg.base as usize;
                        if hi > lo {
                            let sb = bases[seg.code as usize];
                            assert_ne!(sb, MISSING, "stencil crossed a missing neighbor");
                            let s0 = (sb + rb) as isize + shift;
                            let src = &in_data[(s0 + lo as isize) as usize..(s0 + hi as isize) as usize];
                            for ((o, &v), &cf) in
                                out_row[lo..hi].iter_mut().zip(src).zip(&coef[lo..hi])
                            {
                                *o += cf * v;
                            }
                        }
                        if lo > 0 {
                            let nb = bases[seg.code as usize + 2];
                            assert_ne!(nb, MISSING, "stencil crossed a missing neighbor");
                            let off = (bx as isize + shift) as usize;
                            let src = &in_data[nb + rb..nb + rb + bx];
                            for (x, o) in out_row[..lo].iter_mut().enumerate() {
                                *o += coef[x] * src[x + off];
                            }
                        }
                        if hi < bx {
                            let nb = bases[seg.code as usize + 1];
                            assert_ne!(nb, MISSING, "stencil crossed a missing neighbor");
                            let off = (bx as isize - shift) as usize;
                            let src = &in_data[nb + rb..nb + rb + bx];
                            for (x, o) in out_row[hi..].iter_mut().enumerate() {
                                *o += coef[x + hi] * src[x + hi - off];
                            }
                        }
                    }
                }
            });
    }

    /// [`VarCoefPlan::execute`] wrapped in a telemetry scope (see
    /// [`KernelPlan::execute_profiled`]): measured wall time charged as
    /// Compute under a `kernel:varcoef` span.
    pub fn execute_profiled(
        &self,
        input: &BrickStorage,
        output: &mut BrickStorage,
        compute: &[bool],
        rec: &mut telemetry::Recorder,
    ) {
        rec.open("kernel:varcoef");
        let t0 = std::time::Instant::now();
        self.execute(input, output, compute);
        rec.charge(telemetry::Phase::Compute, t0.elapsed().as_secs_f64());
        rec.count(
            "bricks_computed",
            compute.iter().filter(|&&c| c).count() as u64,
        );
        rec.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brickstencil::{apply_bricks_serial, apply_bricks_gather};
    use brick::{BrickDims, BrickGrid};

    fn setup(gdim: usize, bdim: usize) -> (BrickInfo<3>, BrickStorage, BrickStorage) {
        let grid = BrickGrid::<3>::lexicographic([gdim; 3], true);
        let info = BrickInfo::from_grid(BrickDims::cubic(bdim), &grid);
        let mut input = info.allocate(1);
        let data: Vec<f64> = (0..input.as_slice().len())
            .map(|i| ((i * 2654435761) % 1013) as f64 / 7.0 - 60.0)
            .collect();
        input.as_mut_slice().copy_from_slice(&data);
        let output = info.allocate(1);
        (info, input, output)
    }

    /// The planned engine must be *bit-identical* to the serial
    /// reference for both paper proxies and an asymmetric shape.
    #[test]
    fn plan_bit_identical_to_serial() {
        for shape in [
            StencilShape::star7_default(),
            StencilShape::cube125_default(),
            StencilShape::star13_default(),
            StencilShape::new(vec![([0, 0, 0], 0.5), ([2, -1, 0], 0.25), ([-1, 1, -2], 0.25)]),
        ] {
            let (info, input, mut out_plan) = setup(3, 4);
            let mut out_ser = info.allocate(1);
            let compute = vec![true; info.bricks()];
            let plan = KernelPlan::new(&info, &shape, 1, 0);
            plan.execute(&input, &mut out_plan, &compute);
            apply_bricks_serial(&shape, &info, &input, &mut out_ser, &compute, 0);
            assert_eq!(out_plan.as_slice(), out_ser.as_slice());
        }
    }

    /// Sparse compute masks leave skipped bricks untouched and agree
    /// with the gather path on computed ones.
    #[test]
    fn plan_respects_compute_mask() {
        let shape = StencilShape::star13_default();
        let (info, input, mut out_plan) = setup(2, 4);
        let mut out_gather = info.allocate(1);
        out_plan.fill(-3.5);
        out_gather.fill(-3.5);
        let mut compute = vec![true; info.bricks()];
        compute[0] = false;
        compute[5] = false;
        let plan = KernelPlan::new(&info, &shape, 1, 0);
        plan.execute(&input, &mut out_plan, &compute);
        apply_bricks_gather(&shape, &info, &input, &mut out_gather, &compute, 0);
        assert_eq!(out_plan.as_slice(), out_gather.as_slice());
        assert!(out_plan.field(0, 0).iter().all(|&v| v == -3.5));
    }

    /// Plans bound to a non-zero field leave the other fields alone.
    #[test]
    fn plan_multifield() {
        let grid = BrickGrid::<3>::lexicographic([2; 3], true);
        let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
        let mut input = info.allocate(2);
        let mut output = info.allocate(2);
        for b in 0..info.bricks() as u32 {
            input.field_mut(b, 0).fill(1.0);
            input.field_mut(b, 1).fill(5.0);
        }
        output.fill(-1.0);
        let compute = vec![true; info.bricks()];
        let shape = StencilShape::cube125_default();
        let plan1 = KernelPlan::new(&info, &shape, 2, 1);
        plan1.execute(&input, &mut output, &compute);
        assert!((output.field(1, 1)[7] - 5.0).abs() < 1e-12);
        assert!(output.field(1, 0).iter().all(|&v| v == -1.0));
    }

    /// The profiled executor is bit-identical to the plain one and
    /// records a `kernel:plan` scope with a brick counter.
    #[test]
    fn profiled_execute_identical_and_records() {
        let shape = StencilShape::star13_default();
        let (info, input, mut out_a) = setup(2, 4);
        let mut out_b = info.allocate(1);
        let compute = vec![true; info.bricks()];
        let plan = KernelPlan::new(&info, &shape, 1, 0);
        plan.execute(&input, &mut out_a, &compute);
        let mut rec = telemetry::Recorder::disabled();
        rec.enable(0);
        plan.execute_profiled(&input, &mut out_b, &compute, &mut rec);
        assert_eq!(out_a.as_slice(), out_b.as_slice());
        let tl = rec.take_timeline();
        assert_eq!(tl.spans[0].name, "kernel:plan");
        assert!(tl.spans.len() >= 2, "scope plus at least one compute leaf");
        assert_eq!(tl.counters, vec![("bricks_computed", info.bricks() as u64)]);
    }

    /// Interior-then-boundary-batches execution through a [`PlanSplit`]
    /// is bit-identical to one full-mask execute: each brick runs
    /// exactly once and batch partition cannot change its bits.
    #[test]
    fn split_execution_bit_identical_to_full() {
        let shape = StencilShape::cube125_default();
        let (info, input, mut out_full) = setup(3, 4);
        let mut out_split = info.allocate(1);
        let compute = vec![true; info.bricks()];
        // A fake interior: every 3rd brick (the split only needs masks).
        let interior: Vec<bool> = (0..info.bricks()).map(|b| b % 3 == 0).collect();
        let plan = KernelPlan::new(&info, &shape, 1, 0);
        plan.execute(&input, &mut out_full, &compute);

        let mut split = plan.split(&interior, &compute);
        plan.execute(&input, &mut out_split, split.interior());
        let boundary: Vec<u32> = split.boundary().to_vec();
        assert_eq!(boundary.len() + split.interior_count(), info.bricks());
        for batch in boundary.chunks(5) {
            split.stage_batch(batch);
            plan.execute(&input, &mut out_split, split.batch_mask());
            split.clear_batch();
        }
        assert_eq!(out_split.as_slice(), out_full.as_slice());
    }

    /// The varcoef plan is bit-identical to a point-by-point serial
    /// reference that reads coefficients at the output point.
    #[test]
    fn varcoef_plan_matches_serial_reference() {
        use crate::varcoef::VARCOEF_FIELDS;
        use brick::BrickView;
        let grid = BrickGrid::<3>::lexicographic([2; 3], true);
        let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
        let mut st = info.allocate(VARCOEF_FIELDS);
        let data: Vec<f64> = (0..st.as_slice().len())
            .map(|i| ((i * 40503) % 641) as f64 / 11.0 - 20.0)
            .collect();
        st.as_mut_slice().copy_from_slice(&data);
        let mask = vec![true; info.bricks()];
        let mut out_plan = info.allocate(VARCOEF_FIELDS);
        let plan = VarCoefPlan::new(&info, VARCOEF_FIELDS);
        plan.execute(&st, &mut out_plan, &mask);

        let u = BrickView::new(&info, &st, 0);
        let bd = info.brick_dims();
        for b in 0..info.bricks() as u32 {
            for z in 0..4isize {
                for y in 0..4isize {
                    for x in 0..4isize {
                        let idx = bd.flatten([x as usize, y as usize, z as usize]);
                        let mut acc = 0.0;
                        for (f, o) in VC_OFFS.iter().enumerate() {
                            let c = st.field(b, 1 + f)[idx];
                            acc += c
                                * u.get(
                                    b,
                                    [x + o[0] as isize, y + o[1] as isize, z + o[2] as isize],
                                );
                        }
                        assert_eq!(out_plan.field(b, 0)[idx], acc);
                    }
                }
            }
        }
    }
}
