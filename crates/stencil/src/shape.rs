//! Stencil shapes: the paper's two proxies and a generic representation.
//!
//! * 7-point star: arithmetic intensity 8/16 flop/byte,
//! * 125-point (5³) cube with 10 constant coefficients (by symmetry):
//!   139/16 flop/byte.

/// A generic constant-coefficient stencil: `(offset, coefficient)` taps.
#[derive(Clone, Debug, PartialEq)]
pub struct StencilShape {
    taps: Vec<([i8; 3], f64)>,
    radius: usize,
}

impl StencilShape {
    /// Build from explicit taps.
    pub fn new(taps: Vec<([i8; 3], f64)>) -> StencilShape {
        assert!(!taps.is_empty());
        let radius = taps
            .iter()
            .map(|(o, _)| o.iter().map(|v| v.unsigned_abs() as usize).max().unwrap())
            .max()
            .unwrap();
        StencilShape { taps, radius }
    }

    /// The canonical 7-point star with coefficients `c[0]` (center) and
    /// `c[1..7]` (−x, +x, −y, +y, −z, +z).
    pub fn star7(c: [f64; 7]) -> StencilShape {
        StencilShape::new(vec![
            ([0, 0, 0], c[0]),
            ([-1, 0, 0], c[1]),
            ([1, 0, 0], c[2]),
            ([0, -1, 0], c[3]),
            ([0, 1, 0], c[4]),
            ([0, 0, -1], c[5]),
            ([0, 0, 1], c[6]),
        ])
    }

    /// The paper's default 7-point coefficients (a diffusion-like
    /// normalization: stable and non-degenerate).
    pub fn star7_default() -> StencilShape {
        StencilShape::star7([0.4, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1])
    }

    /// The radius-2 star (13-point) stencil common in 4th-order finite
    /// differences: center, ±1 and ±2 along each axis. `c` is indexed
    /// (center, ±1, ±2) with mirror symmetry.
    pub fn star13(c: [f64; 3]) -> StencilShape {
        let mut taps = vec![([0, 0, 0], c[0])];
        for axis in 0..3usize {
            for (dist, coef) in [(1i8, c[1]), (2, c[2])] {
                for sign in [-1i8, 1] {
                    let mut o = [0i8; 3];
                    o[axis] = sign * dist;
                    taps.push((o, coef));
                }
            }
        }
        StencilShape::new(taps)
    }

    /// Default 13-point coefficients (4th-order Laplacian-like weights,
    /// normalized to sum to 1 for boundedness in tests).
    pub fn star13_default() -> StencilShape {
        // Raw 4th-order weights (center -90/12, ±1: 16/12, ±2: -1/12)
        // shifted/scaled into an averaging stencil: w = I + α∇⁴-like.
        let c = [0.4, 0.125, -0.025];
        let total: f64 = c[0] + 6.0 * c[1] + 6.0 * c[2];
        StencilShape::star13([c[0] / total, c[1] / total, c[2] / total])
    }

    /// The 5³ cube (125-point) stencil with 10 constant coefficients by
    /// symmetry class: the coefficient of tap `(i,j,k)` depends only on
    /// the sorted absolute offsets, giving the 10 classes of
    /// `{0,1,2}³/sym`. `c` is indexed by class in lexicographic order of
    /// the sorted triple: (0,0,0), (0,0,1), (0,0,2), (0,1,1), (0,1,2),
    /// (0,2,2), (1,1,1), (1,1,2), (1,2,2), (2,2,2).
    pub fn cube125(c: [f64; 10]) -> StencilShape {
        let mut taps = Vec::with_capacity(125);
        for k in -2i8..=2 {
            for j in -2i8..=2 {
                for i in -2i8..=2 {
                    taps.push(([i, j, k], c[symmetry_class(i, j, k)]));
                }
            }
        }
        StencilShape::new(taps)
    }

    /// Default 125-point coefficients, normalized to sum to 1.
    pub fn cube125_default() -> StencilShape {
        // Class populations: 1, 6, 6, 12, 24, 12, 8, 24, 24, 8.
        let raw = [0.1, 0.05, 0.02, 0.03, 0.012, 0.008, 0.02, 0.006, 0.004, 0.002];
        let pops = [1.0, 6.0, 6.0, 12.0, 24.0, 12.0, 8.0, 24.0, 24.0, 8.0];
        let total: f64 = raw.iter().zip(&pops).map(|(c, p)| c * p).sum();
        let mut c = raw;
        for v in &mut c {
            *v /= total;
        }
        StencilShape::cube125(c)
    }

    /// The taps.
    pub fn taps(&self) -> &[([i8; 3], f64)] {
        &self.taps
    }

    /// Stencil radius (max |offset|).
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of taps.
    pub fn points(&self) -> usize {
        self.taps.len()
    }

    /// Flops per output point (one multiply per tap + adds).
    pub fn flops_per_point(&self) -> f64 {
        (2 * self.taps.len() - 1) as f64
    }

    /// Streaming bytes per point (one read + one write of f64, the
    /// paper's AI denominator of 16 bytes).
    pub fn bytes_per_point(&self) -> f64 {
        16.0
    }
}

/// Extract the coefficients of a canonical 7-point star in the order
/// (center, −x, +x, −y, +y, −z, +z), or `None` if `shape` is not one.
/// Kernels use this to select their specialized fast paths.
pub fn star7_coeffs(shape: &StencilShape) -> Option<[f64; 7]> {
    if shape.points() != 7 || shape.radius() != 1 {
        return None;
    }
    let canonical: [[i8; 3]; 7] = [
        [0, 0, 0],
        [-1, 0, 0],
        [1, 0, 0],
        [0, -1, 0],
        [0, 1, 0],
        [0, 0, -1],
        [0, 0, 1],
    ];
    let mut c = [0.0f64; 7];
    for &(o, v) in shape.taps() {
        let i = canonical.iter().position(|k| *k == o)?;
        c[i] = v;
    }
    Some(c)
}

/// Extract the 10 symmetry-class coefficients of a 125-point cube
/// stencil (see [`StencilShape::cube125`] for the class order), or
/// `None` if `shape` is not a full 5³ cube whose coefficients respect
/// the sorted-absolute-offset symmetry. Kernels use this to select the
/// grouped-row specialized path that performs ~18 multiplies per point
/// instead of 125.
pub fn cube125_coeffs(shape: &StencilShape) -> Option<[f64; 10]> {
    if shape.points() != 125 || shape.radius() != 2 {
        return None;
    }
    let mut c = [f64::NAN; 10];
    let mut seen = [false; 125];
    for &(o, v) in shape.taps() {
        let [i, j, k] = o;
        if i.unsigned_abs() > 2 || j.unsigned_abs() > 2 || k.unsigned_abs() > 2 {
            return None;
        }
        let slot = ((k + 2) as usize * 5 + (j + 2) as usize) * 5 + (i + 2) as usize;
        if seen[slot] {
            return None; // duplicate tap: not a plain cube
        }
        seen[slot] = true;
        let class = symmetry_class(i, j, k);
        if c[class].is_nan() {
            c[class] = v;
        } else if c[class] != v {
            return None; // coefficients break the symmetry
        }
    }
    Some(c)
}

/// Symmetry class (0..10) of a cube tap by sorted absolute offsets.
pub(crate) fn symmetry_class(i: i8, j: i8, k: i8) -> usize {
    let mut a = [i.unsigned_abs(), j.unsigned_abs(), k.unsigned_abs()];
    a.sort_unstable();
    match (a[0], a[1], a[2]) {
        (0, 0, 0) => 0,
        (0, 0, 1) => 1,
        (0, 0, 2) => 2,
        (0, 1, 1) => 3,
        (0, 1, 2) => 4,
        (0, 2, 2) => 5,
        (1, 1, 1) => 6,
        (1, 1, 2) => 7,
        (1, 2, 2) => 8,
        (2, 2, 2) => 9,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star7_shape() {
        let s = StencilShape::star7_default();
        assert_eq!(s.points(), 7);
        assert_eq!(s.radius(), 1);
        assert_eq!(s.flops_per_point(), 13.0);
        let sum: f64 = s.taps().iter().map(|(_, c)| c).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star13_shape() {
        let s = StencilShape::star13_default();
        assert_eq!(s.points(), 13);
        assert_eq!(s.radius(), 2);
        let sum: f64 = s.taps().iter().map(|(_, c)| c).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Mirror symmetry per axis.
        let coeff = |o: [i8; 3]| s.taps().iter().find(|(t, _)| *t == o).unwrap().1;
        assert_eq!(coeff([2, 0, 0]), coeff([-2, 0, 0]));
        assert_eq!(coeff([0, 1, 0]), coeff([0, 0, 1]));
    }

    #[test]
    fn cube125_shape() {
        let s = StencilShape::cube125_default();
        assert_eq!(s.points(), 125);
        assert_eq!(s.radius(), 2);
        let sum: f64 = s.taps().iter().map(|(_, c)| c).sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum = {sum}");
    }

    #[test]
    fn cube125_symmetry() {
        let s = StencilShape::cube125_default();
        let coeff = |i: i8, j: i8, k: i8| -> f64 {
            s.taps()
                .iter()
                .find(|(o, _)| *o == [i, j, k])
                .map(|(_, c)| *c)
                .unwrap()
        };
        // Mirror symmetry and axis permutation symmetry.
        assert_eq!(coeff(1, 0, 0), coeff(-1, 0, 0));
        assert_eq!(coeff(1, 0, 0), coeff(0, 1, 0));
        assert_eq!(coeff(2, 1, 0), coeff(0, -1, -2));
        assert_eq!(coeff(1, 1, 1), coeff(-1, 1, -1));
    }

    #[test]
    fn cube125_coeffs_roundtrip() {
        let raw = [0.1, 0.05, 0.02, 0.03, 0.012, 0.008, 0.02, 0.006, 0.004, 0.002];
        let s = StencilShape::cube125(raw);
        assert_eq!(cube125_coeffs(&s), Some(raw));
        assert!(cube125_coeffs(&StencilShape::cube125_default()).is_some());
        // Non-cube shapes are rejected.
        assert_eq!(cube125_coeffs(&StencilShape::star7_default()), None);
        // Symmetry-breaking coefficients are rejected.
        let mut taps = s.taps().to_vec();
        taps[0].1 += 1.0;
        assert_eq!(cube125_coeffs(&StencilShape::new(taps)), None);
    }

    #[test]
    fn symmetry_class_count() {
        let mut seen = [0usize; 10];
        for k in -2i8..=2 {
            for j in -2i8..=2 {
                for i in -2i8..=2 {
                    seen[symmetry_class(i, j, k)] += 1;
                }
            }
        }
        assert_eq!(seen, [1, 6, 6, 12, 24, 12, 8, 24, 24, 8]);
        assert_eq!(seen.iter().sum::<usize>(), 125);
    }
}
