//! An MPI derived-datatype engine.
//!
//! The `MPI_Types` baseline describes strided ghost-zone regions with
//! derived datatypes and lets the MPI library do the gather/scatter.
//! This module reimplements such an engine: a datatype tree whose pack
//! walk visits elements through the type map, exactly like a
//! non-specialized `MPI_Pack` path. The element-granularity traversal is
//! what makes derived types slow on strided stencil regions (the paper
//! measures `MPI_Types` up to 460× slower than MemMap on KNL) — this
//! engine reproduces that pathology for real, on real memory.

/// A derived datatype over `f64` elements.
#[derive(Clone, Debug, PartialEq)]
pub enum Datatype {
    /// Consecutive elements.
    Contiguous {
        /// Number of elements.
        count: usize,
    },
    /// Equally-spaced blocks (`MPI_Type_vector`).
    Vector {
        /// Number of blocks.
        count: usize,
        /// Elements per block.
        blocklen: usize,
        /// Elements between block starts.
        stride: usize,
    },
    /// Repetitions of a nested type (`MPI_Type_create_hvector`, in
    /// element units).
    Hvector {
        /// Number of repetitions.
        count: usize,
        /// Elements between repetition starts.
        stride: usize,
        /// The repeated type.
        inner: Box<Datatype>,
    },
    /// A 3D subarray of a row-major array
    /// (`MPI_Type_create_subarray`), axis 0 fastest.
    Subarray {
        /// Extents of the full array.
        full: [usize; 3],
        /// Start corner of the subarray.
        start: [usize; 3],
        /// Extents of the subarray.
        sub: [usize; 3],
    },
}

impl Datatype {
    /// The subarray type for surface/ghost regions: `full` array extents
    /// (including ghost rim), `start` corner, `sub` extents, axis 0
    /// fastest.
    pub fn subarray3(full: [usize; 3], start: [usize; 3], sub: [usize; 3]) -> Datatype {
        for a in 0..3 {
            assert!(start[a] + sub[a] <= full[a], "subarray exceeds array on axis {a}");
            assert!(sub[a] >= 1);
        }
        Datatype::Subarray { full, start, sub }
    }

    /// Number of `f64`s the type gathers.
    pub fn size(&self) -> usize {
        match self {
            Datatype::Contiguous { count } => *count,
            Datatype::Vector { count, blocklen, .. } => count * blocklen,
            Datatype::Hvector { count, inner, .. } => count * inner.size(),
            Datatype::Subarray { sub, .. } => sub.iter().product(),
        }
    }

    /// Visit the element offset of every gathered element, in type-map
    /// order, starting at `base`.
    pub fn for_each_offset(&self, base: usize, f: &mut impl FnMut(usize)) {
        match self {
            Datatype::Contiguous { count } => {
                for i in 0..*count {
                    f(base + i);
                }
            }
            Datatype::Vector { count, blocklen, stride } => {
                for b in 0..*count {
                    for i in 0..*blocklen {
                        f(base + b * stride + i);
                    }
                }
            }
            Datatype::Hvector { count, stride, inner } => {
                for b in 0..*count {
                    inner.for_each_offset(base + b * stride, f);
                }
            }
            Datatype::Subarray { full, start, sub } => {
                for z in 0..sub[2] {
                    for y in 0..sub[1] {
                        let row =
                            ((start[2] + z) * full[1] + (start[1] + y)) * full[0] + start[0];
                        for x in 0..sub[0] {
                            f(row + x);
                        }
                    }
                }
            }
        }
    }

    /// Gather (pack) the described elements of `src` into a fresh
    /// buffer, element by element through the type map.
    pub fn pack(&self, src: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.pack_into(src, &mut out);
        out
    }

    /// Gather (pack) the described elements of `src` into a reused
    /// buffer — same element-granularity walk, no per-call allocation
    /// once `out` has grown to the type's size.
    pub fn pack_into(&self, src: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.size());
        self.for_each_offset(0, &mut |off| out.push(src[off]));
    }

    /// Scatter (unpack) `buf` into the described elements of `dst`.
    pub fn unpack(&self, dst: &mut [f64], buf: &[f64]) {
        assert_eq!(buf.len(), self.size());
        let mut i = 0;
        self.for_each_offset(0, &mut |off| {
            dst[off] = buf[i];
            i += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_pack() {
        let d = Datatype::Contiguous { count: 4 };
        assert_eq!(d.size(), 4);
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(d.pack(&src), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn vector_pack() {
        // 3 blocks of 2, stride 4: offsets 0,1, 4,5, 8,9.
        let d = Datatype::Vector { count: 3, blocklen: 2, stride: 4 };
        assert_eq!(d.size(), 6);
        let src: Vec<f64> = (0..12).map(|i| i as f64).collect();
        assert_eq!(d.pack(&src), vec![0.0, 1.0, 4.0, 5.0, 8.0, 9.0]);
    }

    #[test]
    fn hvector_nesting() {
        // 2 planes of a 2x2 corner of a 4x4 array, plane stride 16.
        let inner = Datatype::Vector { count: 2, blocklen: 2, stride: 4 };
        let d = Datatype::Hvector { count: 2, stride: 16, inner: Box::new(inner) };
        assert_eq!(d.size(), 8);
        let src: Vec<f64> = (0..32).map(|i| i as f64).collect();
        assert_eq!(
            d.pack(&src),
            vec![0.0, 1.0, 4.0, 5.0, 16.0, 17.0, 20.0, 21.0]
        );
    }

    #[test]
    fn subarray_matches_nested_vectors() {
        let full = [6, 5, 4];
        let start = [1, 2, 1];
        let sub = [3, 2, 2];
        let d = Datatype::subarray3(full, start, sub);
        // Equivalent nested hvector construction.
        let row = Datatype::Contiguous { count: sub[0] };
        let plane = Datatype::Hvector {
            count: sub[1],
            stride: full[0],
            inner: Box::new(row),
        };
        let vol = Datatype::Hvector {
            count: sub[2],
            stride: full[0] * full[1],
            inner: Box::new(plane),
        };
        let base = (start[2] * full[1] + start[1]) * full[0] + start[0];
        let src: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let mut a = Vec::new();
        d.for_each_offset(0, &mut |o| a.push(o));
        let mut b = Vec::new();
        vol.for_each_offset(base, &mut |o| b.push(o));
        assert_eq!(a, b);
        assert_eq!(d.size(), 12);
        assert_eq!(d.pack(&src).len(), 12);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let d = Datatype::subarray3([4, 4, 4], [1, 1, 1], [2, 2, 2]);
        let src: Vec<f64> = (0..64).map(|i| (i * i) as f64).collect();
        let buf = d.pack(&src);
        let mut dst = vec![0.0; 64];
        d.unpack(&mut dst, &buf);
        d.for_each_offset(0, &mut |o| assert_eq!(dst[o], src[o]));
        // Elements outside the subarray stay zero.
        assert_eq!(dst[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds array")]
    fn oversized_subarray_rejected() {
        Datatype::subarray3([4, 4, 4], [3, 0, 0], [2, 1, 1]);
    }
}
