//! Stencil application on bricked storage.
//!
//! Mirrors the paper's Figure 6 computation: iterate a list of brick
//! indices; within each brick run dense loops; accesses that step past a
//! brick face resolve through the adjacency list. Interior elements (all
//! taps in-brick) take a direct-offset fast path — the moral equivalent
//! of the brick library's generated vector code.

use brick::{BrickInfo, BrickStorage, BrickView};
use rayon::prelude::*;

use crate::shape::StencilShape;

/// Apply `shape` to `field` of every brick selected by `compute[b]`,
/// reading `input` and writing `output` (same geometry). Sequential
/// reference implementation.
pub fn apply_bricks_serial(
    shape: &StencilShape,
    info: &BrickInfo<3>,
    input: &BrickStorage,
    output: &mut BrickStorage,
    compute: &[bool],
    field: usize,
) {
    assert_eq!(compute.len(), info.bricks());
    let view = BrickView::new(info, input, field);
    let bd = info.brick_dims();
    let [bx, by, bz] = bd.extents();
    for b in 0..info.bricks() as u32 {
        if !compute[b as usize] {
            continue;
        }
        for z in 0..bz {
            for y in 0..by {
                for x in 0..bx {
                    let mut acc = 0.0;
                    for &(o, c) in shape.taps() {
                        acc += c * view.get(
                            b,
                            [
                                x as isize + o[0] as isize,
                                y as isize + o[1] as isize,
                                z as isize + o[2] as isize,
                            ],
                        );
                    }
                    output.field_mut(b, field)[bd.flatten([x, y, z])] = acc;
                }
            }
        }
    }
}

/// Parallel optimized application: bricks are distributed over threads
/// and the shape dispatches to the fastest available kernel — the
/// hoisted-row star7 path, the grouped-row symmetric cube125 path, or
/// the generic halo-gather fallback. One-shot convenience wrapper; for
/// bind-once/execute-many steady-state stepping compile a
/// [`crate::KernelPlan`] instead.
pub fn apply_bricks(
    shape: &StencilShape,
    info: &BrickInfo<3>,
    input: &BrickStorage,
    output: &mut BrickStorage,
    compute: &[bool],
    field: usize,
) {
    assert_eq!(compute.len(), info.bricks());
    assert!(field < output.fields());
    let bd = info.brick_dims();
    let [bx, by, bz] = bd.extents();
    let r = shape.radius();
    assert!(
        r <= bx && r <= by && r <= bz,
        "stencil radius exceeds brick extent"
    );
    // Specialized fast path for the canonical 7-point star.
    if let Some(c) = crate::shape::star7_coeffs(shape) {
        return apply_star7_bricks(&c, info, input, output, compute, field);
    }
    // Specialized fast path for the 10-coefficient symmetric 5³ cube.
    if let Some(c) = crate::shape::cube125_coeffs(shape) {
        return apply_cube125_bricks(&c, info, input, output, compute, field);
    }
    apply_bricks_gather(shape, info, input, output, compute, field)
}

/// Generic halo-gather kernel: each brick plus an `r`-deep halo is
/// gathered into a dense thread-local scratch block, then a dense tap
/// loop runs branch-free over every output element. This is the
/// portable fallback for arbitrary shapes and the baseline the
/// [`crate::KernelPlan`] engine is benchmarked against
/// (`bench_compute`, `brick-bench --kernel gather`).
pub fn apply_bricks_gather(
    shape: &StencilShape,
    info: &BrickInfo<3>,
    input: &BrickStorage,
    output: &mut BrickStorage,
    compute: &[bool],
    field: usize,
) {
    assert_eq!(compute.len(), info.bricks());
    assert!(field < output.fields());
    let bd = info.brick_dims();
    let [bx, by, bz] = bd.extents();
    let r = shape.radius();
    assert!(
        r <= bx && r <= by && r <= bz,
        "stencil radius exceeds brick extent"
    );
    let step = output.step();
    let elems = output.elements_per_brick();
    let field_base = field * elems;
    let in_data = input.as_slice();

    // Per-axis resolve tables: for a shifted coordinate `s = pos + r`
    // in `0 .. extent + 2r`, the (base-3 trit, wrapped local coordinate)
    // pair. Trit encoding matches `trits_to_code`: 0 in-brick, 1 the
    // positive neighbor, 2 the negative neighbor.
    let table = |e: usize| -> Vec<(usize, usize)> {
        (0..e + 2 * r)
            .map(|s| {
                let p = s as isize - r as isize;
                if p < 0 {
                    (2usize, (p + e as isize) as usize)
                } else if p >= e as isize {
                    (1usize, (p - e as isize) as usize)
                } else {
                    (0usize, p as usize)
                }
            })
            .collect()
    };
    let (tx, ty, tz) = (table(bx), table(by), table(bz));

    // Padded scratch geometry: the brick plus an r-deep halo gathered
    // into a dense local buffer, so the tap loop runs branch-free over
    // every output element (the generic-stencil analogue of the brick
    // library's vector-align code generation).
    let (px, py, pz) = (bx + 2 * r, by + 2 * r, bz + 2 * r);
    let deltas: Vec<(isize, f64)> = shape
        .taps()
        .iter()
        .map(|&(o, c)| {
            (
                o[0] as isize + o[1] as isize * px as isize + o[2] as isize * (px * py) as isize,
                c,
            )
        })
        .collect();

    output
        .as_mut_slice()
        .par_chunks_mut(step)
        .with_min_len(16)
        .enumerate()
        .filter(|(b, _)| compute[*b])
        .for_each(|(b, chunk)| {
            // Thread-local grow-only scratch: sized on the thread's
            // first brick, reused allocation-free afterwards (the
            // gather below overwrites every element it reads).
            crate::arena::with_scratch(px * py * pz, |scratch| {
                let b = b as u32;
                let out = &mut chunk[field_base..field_base + elems];
                let adj = info.adjacency_row(b);
                let base = b as usize * step + field_base;
                let in_brick = &in_data[base..base + elems];

                // Gather brick + halo. In-brick rows are memcpy; halo
                // elements resolve through the per-axis tables.
                for (sz, &(cz, lz)) in tz.iter().enumerate() {
                    for (sy, &(cy, ly)) in ty.iter().enumerate() {
                        let dst_row = (sz * py + sy) * px;
                        if cz == 0 && cy == 0 {
                            // Row interior is contiguous in the brick.
                            let src_row = (lz * by + ly) * bx;
                            scratch[dst_row + r..dst_row + r + bx]
                                .copy_from_slice(&in_brick[src_row..src_row + bx]);
                            for sx in (0..r).chain(px - r..px) {
                                let (cx, lx) = tx[sx];
                                let code = cx + 3 * (cy + 3 * cz);
                                let nb = adj[code];
                                debug_assert_ne!(nb, brick::NO_BRICK);
                                scratch[dst_row + sx] = in_data
                                    [nb as usize * step + field_base + lx + bx * (ly + by * lz)];
                            }
                        } else {
                            for (sx, &(cx, lx)) in tx.iter().enumerate() {
                                let code = cx + 3 * (cy + 3 * cz);
                                let local = lx + bx * (ly + by * lz);
                                let v = if code == 0 {
                                    in_brick[local]
                                } else {
                                    let nb = adj[code];
                                    debug_assert_ne!(
                                        nb,
                                        brick::NO_BRICK,
                                        "stencil crossed a missing neighbor"
                                    );
                                    in_data[nb as usize * step + field_base + local]
                                };
                                scratch[dst_row + sx] = v;
                            }
                        }
                    }
                }

                // Dense tap loop over the padded buffer.
                for z in 0..bz {
                    for y in 0..by {
                        let srow = ((z + r) * py + (y + r)) * px + r;
                        let orow = (z * by + y) * bx;
                        for (x, o) in out[orow..orow + bx].iter_mut().enumerate() {
                            let idx = srow + x;
                            let mut acc = 0.0;
                            for &(d, c) in &deltas {
                                acc += c * scratch[(idx as isize + d) as usize];
                            }
                            *o = acc;
                        }
                    }
                }
            });
        });
}

/// Grouped-row 125-point kernel exploiting the paper's 10-coefficient
/// symmetry: for each output row the 25 source rows `(dy, dz)` collapse
/// into 6 accumulated group rows keyed by sorted `(|dy|, |dz|)` (padded
/// two columns into the ±x neighbors), and the x pass combines each
/// group with its 3 per-|dx| class coefficients — ~18 multiplies per
/// point instead of 125. Regrouping changes the FP summation order, so
/// this path is tolerance-equal (not bit-identical) to the reference;
/// [`crate::KernelPlan`] keeps cube125 on the bit-identical row-segment
/// engine.
fn apply_cube125_bricks(
    c: &[f64; 10],
    info: &BrickInfo<3>,
    input: &BrickStorage,
    output: &mut BrickStorage,
    compute: &[bool],
    field: usize,
) {
    let bd = info.brick_dims();
    let [bx, by, bz] = bd.extents();
    assert!(
        bx >= 2 && by >= 2 && bz >= 2,
        "cube125 kernel needs bricks of extent >= 2"
    );
    let step = output.step();
    let elems = output.elements_per_brick();
    let field_base = field * elems;
    let in_data = input.as_slice();
    let pad = bx + 4;

    // Row-group index by (|dy|, |dz|) and the 3 per-|dx| coefficients
    // of each group's representative (dy, dz).
    const GMAP: [[usize; 3]; 3] = [[0, 1, 2], [1, 3, 4], [2, 4, 5]];
    const REPS: [(i8, i8); 6] = [(0, 0), (1, 0), (2, 0), (1, 1), (2, 1), (2, 2)];
    let tri: [[f64; 3]; 6] = std::array::from_fn(|g| {
        let (dy, dz) = REPS[g];
        std::array::from_fn(|a| c[crate::shape::symmetry_class(a as i8, dy, dz)])
    });

    // Resolve a shifted row coordinate: (trit, wrapped local index).
    let resolve = |p: isize, e: usize| -> (usize, usize) {
        if p < 0 {
            (2, (p + e as isize) as usize)
        } else if p >= e as isize {
            (1, (p - e as isize) as usize)
        } else {
            (0, p as usize)
        }
    };

    output
        .as_mut_slice()
        .par_chunks_mut(step)
        .with_min_len(16)
        .enumerate()
        .filter(|(b, _)| compute[*b])
        .for_each(|(b, chunk)| {
            let out = &mut chunk[field_base..field_base + elems];
            let adj = info.adjacency_row(b as u32);
            let bases: [usize; 27] = std::array::from_fn(|code| {
                let nb = adj[code];
                assert_ne!(nb, brick::NO_BRICK, "stencil crossed a missing neighbor");
                nb as usize * step + field_base
            });
            crate::arena::with_scratch(6 * pad, |scratch| {
                for z in 0..bz {
                    for y in 0..by {
                        scratch.fill(0.0);
                        // Accumulate the 25 source rows into 6 groups.
                        for dz in -2isize..=2 {
                            let (tz, lz) = resolve(z as isize + dz, bz);
                            for dy in -2isize..=2 {
                                let (ty, ly) = resolve(y as isize + dy, by);
                                let code = 3 * (ty + 3 * tz);
                                let rb = (lz * by + ly) * bx;
                                let g = GMAP[dy.unsigned_abs()][dz.unsigned_abs()];
                                let grow = &mut scratch[g * pad..(g + 1) * pad];
                                let mid = &in_data[bases[code] + rb..][..bx];
                                for (d, &s) in grow[2..2 + bx].iter_mut().zip(mid) {
                                    *d += s;
                                }
                                let lsrc = &in_data[bases[code + 2] + rb + bx - 2..][..2];
                                grow[0] += lsrc[0];
                                grow[1] += lsrc[1];
                                let rsrc = &in_data[bases[code + 1] + rb..][..2];
                                grow[bx + 2] += rsrc[0];
                                grow[bx + 3] += rsrc[1];
                            }
                        }
                        // x pass: 6 symmetric 5-wide combinations.
                        let orow = (z * by + y) * bx;
                        let out_row = &mut out[orow..orow + bx];
                        out_row.fill(0.0);
                        for (t, gr) in tri.iter().zip(scratch.chunks_exact(pad)) {
                            let [t0, t1, t2] = *t;
                            for (x, o) in out_row.iter_mut().enumerate() {
                                *o += t0 * gr[x + 2]
                                    + t1 * (gr[x + 1] + gr[x + 3])
                                    + t2 * (gr[x] + gr[x + 4]);
                            }
                        }
                    }
                }
            });
        });
}

/// Generated-style 7-point brick kernel: face-neighbor rows are hoisted
/// per (z, y) row and the inner x loop is branch-free over `1..bx-1`.
/// Also the star7 execution path of [`crate::KernelPlan`].
pub(crate) fn apply_star7_bricks(
    c: &[f64; 7],
    info: &BrickInfo<3>,
    input: &BrickStorage,
    output: &mut BrickStorage,
    compute: &[bool],
    field: usize,
) {
    let bd = info.brick_dims();
    let [bx, by, bz] = bd.extents();
    assert!(bx >= 2 && by >= 2 && bz >= 2, "star7 kernel needs bricks of extent >= 2");
    if [bx, by, bz] == [8, 8, 8] {
        // The library's default blocking gets the generated-code path.
        return apply_star7_bricks8(c, info, input, output, compute, field);
    }
    let step = output.step();
    let elems = output.elements_per_brick();
    let field_base = field * elems;
    let in_data = input.as_slice();
    let plane = bx * by;
    let [c0, cxm, cxp, cym, cyp, czm, czp] = *c;

    // Adjacency codes of the six face neighbors (trit encoding: +1 -> 1,
    // -1 -> 2; axis 0 least significant).
    const XM: usize = 2;
    const XP: usize = 1;
    const YM: usize = 6;
    const YP: usize = 3;
    const ZM: usize = 18;
    const ZP: usize = 9;

    output
        .as_mut_slice()
        .par_chunks_mut(step)
        .with_min_len(16)
        .enumerate()
        .filter(|(b, _)| compute[*b])
        .for_each(|(b, chunk)| {
            let b = b as u32;
            let out = &mut chunk[field_base..field_base + elems];
            let adj = info.adjacency_row(b);
            let base = |nb: u32| nb as usize * step + field_base;
            let cur = &in_data[base(b)..base(b) + elems];
            let nxm = &in_data[base(adj[XM])..base(adj[XM]) + elems];
            let nxp = &in_data[base(adj[XP])..base(adj[XP]) + elems];
            let nym = &in_data[base(adj[YM])..base(adj[YM]) + elems];
            let nyp = &in_data[base(adj[YP])..base(adj[YP]) + elems];
            let nzm = &in_data[base(adj[ZM])..base(adj[ZM]) + elems];
            let nzp = &in_data[base(adj[ZP])..base(adj[ZP]) + elems];

            for z in 0..bz {
                for y in 0..by {
                    let row = (z * by + y) * bx;
                    let rc = &cur[row..row + bx];
                    let rym: &[f64] = if y > 0 {
                        &cur[row - bx..row]
                    } else {
                        let r = (z * by + (by - 1)) * bx;
                        &nym[r..r + bx]
                    };
                    let ryp: &[f64] = if y + 1 < by {
                        &cur[row + bx..row + 2 * bx]
                    } else {
                        let r = z * by * bx;
                        &nyp[r..r + bx]
                    };
                    let rzm: &[f64] = if z > 0 {
                        &cur[row - plane..row - plane + bx]
                    } else {
                        let r = ((bz - 1) * by + y) * bx;
                        &nzm[r..r + bx]
                    };
                    let rzp: &[f64] = if z + 1 < bz {
                        &cur[row + plane..row + plane + bx]
                    } else {
                        let r = y * bx;
                        &nzp[r..r + bx]
                    };
                    // Branch-free interior of the row.
                    for x in 1..bx - 1 {
                        out[row + x] = c0 * rc[x]
                            + cxm * rc[x - 1]
                            + cxp * rc[x + 1]
                            + cym * rym[x]
                            + cyp * ryp[x]
                            + czm * rzm[x]
                            + czp * rzp[x];
                    }
                    // x = 0 reaches into the -x neighbor's last column.
                    out[row] = c0 * rc[0]
                        + cxm * nxm[row + bx - 1]
                        + cxp * rc[1]
                        + cym * rym[0]
                        + cyp * ryp[0]
                        + czm * rzm[0]
                        + czp * rzp[0];
                    // x = bx-1 reaches into the +x neighbor's first column.
                    out[row + bx - 1] = c0 * rc[bx - 1]
                        + cxm * rc[bx - 2]
                        + cxp * nxp[row]
                        + cym * rym[bx - 1]
                        + cyp * ryp[bx - 1]
                        + czm * rzm[bx - 1]
                        + czp * rzp[bx - 1];
                }
            }
        });
}

/// 8³-specialized 7-point kernel: every row is a fixed `[f64; 8]`, so
/// the compiler sees constant trip counts and no bounds checks — the
/// equivalent of the brick library's generated vector code for its
/// default brick size.
fn apply_star7_bricks8(
    c: &[f64; 7],
    info: &BrickInfo<3>,
    input: &BrickStorage,
    output: &mut BrickStorage,
    compute: &[bool],
    field: usize,
) {
    const B: usize = 8;
    const E: usize = B * B * B;
    let step = output.step();
    let field_base = field * E;
    let in_data = input.as_slice();
    let [c0, cxm, cxp, cym, cyp, czm, czp] = *c;
    const XM: usize = 2;
    const XP: usize = 1;
    const YM: usize = 6;
    const YP: usize = 3;
    const ZM: usize = 18;
    const ZP: usize = 9;

    fn row8(s: &[f64], at: usize) -> &[f64; 8] {
        s[at..at + 8].try_into().unwrap()
    }

    output
        .as_mut_slice()
        .par_chunks_mut(step)
        .with_min_len(16)
        .enumerate()
        .filter(|(b, _)| compute[*b])
        .for_each(|(b, chunk)| {
            let b = b as u32;
            let out = &mut chunk[field_base..field_base + E];
            let adj = info.adjacency_row(b);
            let base = |nb: u32| nb as usize * step + field_base;
            let cur = &in_data[base(b)..base(b) + E];
            let nxm = &in_data[base(adj[XM])..base(adj[XM]) + E];
            let nxp = &in_data[base(adj[XP])..base(adj[XP]) + E];
            let nym = &in_data[base(adj[YM])..base(adj[YM]) + E];
            let nyp = &in_data[base(adj[YP])..base(adj[YP]) + E];
            let nzm = &in_data[base(adj[ZM])..base(adj[ZM]) + E];
            let nzp = &in_data[base(adj[ZP])..base(adj[ZP]) + E];

            for z in 0..B {
                for y in 0..B {
                    let row = (z * B + y) * B;
                    let rc = row8(cur, row);
                    let rym = if y > 0 { row8(cur, row - B) } else { row8(nym, (z * B + B - 1) * B) };
                    let ryp = if y + 1 < B { row8(cur, row + B) } else { row8(nyp, z * B * B) };
                    let rzm = if z > 0 { row8(cur, row - B * B) } else { row8(nzm, ((B - 1) * B + y) * B) };
                    let rzp = if z + 1 < B { row8(cur, row + B * B) } else { row8(nzp, y * B) };
                    let o: &mut [f64; B] = (&mut out[row..row + B]).try_into().unwrap();
                    for x in 1..B - 1 {
                        o[x] = c0 * rc[x]
                            + cxm * rc[x - 1]
                            + cxp * rc[x + 1]
                            + cym * rym[x]
                            + cyp * ryp[x]
                            + czm * rzm[x]
                            + czp * rzp[x];
                    }
                    // x edges reach one element into the ±x neighbors.
                    o[0] = c0 * rc[0]
                        + cxm * nxm[row + B - 1]
                        + cxp * rc[1]
                        + cym * rym[0]
                        + cyp * ryp[0]
                        + czm * rzm[0]
                        + czp * rzp[0];
                    o[B - 1] = c0 * rc[B - 1]
                        + cxm * rc[B - 2]
                        + cxp * nxp[row]
                        + cym * rym[B - 1]
                        + cyp * ryp[B - 1]
                        + czm * rzm[B - 1]
                        + czp * rzp[B - 1];
                }
            }
        });
}

/// GStencil/s throughput metric used throughout the paper's figures.
pub fn gstencil_per_sec(points: u64, seconds: f64) -> f64 {
    points as f64 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick::{BrickDims, BrickGrid};

    fn setup(
        gdim: usize,
        bdim: usize,
    ) -> (BrickGrid<3>, BrickInfo<3>, BrickStorage, BrickStorage) {
        let grid = BrickGrid::<3>::lexicographic([gdim; 3], true);
        let info = BrickInfo::from_grid(BrickDims::cubic(bdim), &grid);
        let a = info.allocate(1);
        let b = info.allocate(1);
        (grid, info, a, b)
    }

    fn fill(grid: &BrickGrid<3>, st: &mut BrickStorage, bdim: usize, f: impl Fn(usize, usize, usize) -> f64) {
        let n = grid.dims()[0] * bdim;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let b = grid.brick_at([x / bdim, y / bdim, z / bdim]);
                    let off = ((z % bdim) * bdim + (y % bdim)) * bdim + (x % bdim);
                    st.field_mut(b, 0)[off] = f(x, y, z);
                }
            }
        }
    }

    /// Brick stencil must agree exactly with the array stencil on a
    /// periodic domain (same FP order is not guaranteed, so compare with
    /// a tight tolerance).
    #[test]
    fn matches_array_reference_7pt() {
        let (grid, info, mut input, mut output) = setup(3, 4);
        let n = 12;
        fill(&grid, &mut input, 4, |x, y, z| ((x * 7 + y * 13 + z * 29) % 17) as f64);

        let shape = StencilShape::star7_default();
        let compute = vec![true; info.bricks()];
        apply_bricks(&shape, &info, &input, &mut output, &compute, 0);

        let mut arr = crate::array::ArrayGrid::new([n; 3], 1);
        arr.fill_interior(|x, y, z| ((x * 7 + y * 13 + z * 29) % 17) as f64);
        arr.fill_ghost_periodic_self();
        let mut arr_out = crate::array::ArrayGrid::new([n; 3], 1);
        arr.apply_into(&shape, &mut arr_out);

        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let b = grid.brick_at([x / 4, y / 4, z / 4]);
                    let off = ((z % 4) * 4 + (y % 4)) * 4 + (x % 4);
                    let got = output.field(b, 0)[off];
                    let want = arr_out.get(x as isize, y as isize, z as isize);
                    assert!(
                        (got - want).abs() < 1e-12,
                        "mismatch at ({x},{y},{z}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_array_reference_125pt() {
        let (grid, info, mut input, mut output) = setup(3, 4);
        let n = 12;
        fill(&grid, &mut input, 4, |x, y, z| ((x * 3 + y * 5 + z * 11) % 23) as f64);

        let shape = StencilShape::cube125_default();
        let compute = vec![true; info.bricks()];
        apply_bricks(&shape, &info, &input, &mut output, &compute, 0);

        let mut arr = crate::array::ArrayGrid::new([n; 3], 2);
        arr.fill_interior(|x, y, z| ((x * 3 + y * 5 + z * 11) % 23) as f64);
        arr.fill_ghost_periodic_self();
        let mut arr_out = crate::array::ArrayGrid::new([n; 3], 2);
        arr.apply_into(&shape, &mut arr_out);

        let mut max_err = 0.0f64;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let b = grid.brick_at([x / 4, y / 4, z / 4]);
                    let off = ((z % 4) * 4 + (y % 4)) * 4 + (x % 4);
                    let got = output.field(b, 0)[off];
                    let want = arr_out.get(x as isize, y as isize, z as isize);
                    max_err = max_err.max((got - want).abs());
                }
            }
        }
        assert!(max_err < 1e-12, "max_err = {max_err}");
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (grid, info, mut input, mut out_par) = setup(2, 4);
        fill(&grid, &mut input, 4, |x, y, z| (x as f64).sin() + (y * z) as f64);
        let mut out_ser = info.allocate(1);
        let shape = StencilShape::star7_default();
        let compute = vec![true; info.bricks()];
        apply_bricks(&shape, &info, &input, &mut out_par, &compute, 0);
        apply_bricks_serial(&shape, &info, &input, &mut out_ser, &compute, 0);
        assert_eq!(out_par.as_slice(), out_ser.as_slice());
    }

    /// The gather fallback accumulates in tap order, so it is
    /// bit-identical to the serial reference for any shape.
    #[test]
    fn gather_bit_identical_to_serial() {
        let (grid, info, mut input, mut out_g) = setup(2, 4);
        fill(&grid, &mut input, 4, |x, y, z| ((x * 13 + y * 7 + z * 3) % 19) as f64 - 9.0);
        let mut out_s = info.allocate(1);
        let compute = vec![true; info.bricks()];
        for shape in [StencilShape::star13_default(), StencilShape::cube125_default()] {
            apply_bricks_gather(&shape, &info, &input, &mut out_g, &compute, 0);
            apply_bricks_serial(&shape, &info, &input, &mut out_s, &compute, 0);
            assert_eq!(out_g.as_slice(), out_s.as_slice());
        }
    }

    /// The grouped-row symmetric cube125 kernel regroups the summation,
    /// so compare with a tight tolerance against the serial reference.
    #[test]
    fn cube125_symmetric_matches_serial() {
        for bdim in [2usize, 4, 8] {
            let (grid, info, mut input, mut out_f) = setup(2, bdim);
            fill(&grid, &mut input, bdim, |x, y, z| {
                ((x * 13 + y * 7 + z * 3) % 19) as f64 - 9.0
            });
            let mut out_s = info.allocate(1);
            let compute = vec![true; info.bricks()];
            let shape = StencilShape::cube125_default();
            apply_bricks(&shape, &info, &input, &mut out_f, &compute, 0);
            apply_bricks_serial(&shape, &info, &input, &mut out_s, &compute, 0);
            let max_err = out_f
                .as_slice()
                .iter()
                .zip(out_s.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(max_err < 1e-12, "bdim {bdim}: max_err = {max_err}");
        }
    }

    #[test]
    fn compute_mask_skips_bricks() {
        let (_grid, info, mut input, mut output) = setup(2, 4);
        input.fill(1.0);
        output.fill(-7.0);
        let mut compute = vec![true; info.bricks()];
        compute[3] = false;
        apply_bricks(
            &StencilShape::star7_default(),
            &info,
            &input,
            &mut output,
            &compute,
            0,
        );
        // Skipped brick untouched, others overwritten with 1.0 (sum of
        // normalized coefficients over a constant field).
        assert!(output.field(3, 0).iter().all(|&v| v == -7.0));
        assert!(output.field(0, 0).iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn multifield_independence() {
        let grid = BrickGrid::<3>::lexicographic([2; 3], true);
        let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
        let mut input = info.allocate(2);
        let mut output = info.allocate(2);
        for b in 0..info.bricks() as u32 {
            input.field_mut(b, 0).fill(1.0);
            input.field_mut(b, 1).fill(5.0);
        }
        let compute = vec![true; info.bricks()];
        let shape = StencilShape::star7_default();
        apply_bricks(&shape, &info, &input, &mut output, &compute, 0);
        apply_bricks(&shape, &info, &input, &mut output, &compute, 1);
        assert!((output.field(1, 0)[0] - 1.0).abs() < 1e-12);
        assert!((output.field(1, 1)[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gstencil_metric() {
        assert_eq!(gstencil_per_sec(2_000_000_000, 2.0), 1.0);
    }
}
