//! Brick extents and index arithmetic.

/// Extents of one brick along each of `D` axes, in elements.
///
/// Axis 0 is the unit-stride ("i") axis, matching the paper's `i-j-k`
/// convention where `Brick<Dim<8,8,8>>` lists extents slowest-first in C++
/// but indexes fastest-last; here `dims[0]` is always the fastest axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BrickDims<const D: usize> {
    dims: [usize; D],
}

impl<const D: usize> BrickDims<D> {
    /// New brick extents. All extents must be non-zero.
    pub fn new(dims: [usize; D]) -> Self {
        assert!(D >= 1, "bricks need at least one axis");
        assert!(dims.iter().all(|&d| d > 0), "brick extents must be positive");
        BrickDims { dims }
    }

    /// Cubic brick `n^D`.
    pub fn cubic(n: usize) -> Self {
        Self::new([n; D])
    }

    /// Per-axis extents.
    #[inline]
    pub fn extents(&self) -> [usize; D] {
        self.dims
    }

    /// Extent along one axis.
    #[inline]
    pub fn extent(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Elements per brick (product of extents).
    #[inline]
    pub fn elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Flatten an in-brick element coordinate (each `pos[a] < extent(a)`)
    /// to its offset within the brick, axis 0 fastest.
    #[inline]
    pub fn flatten(&self, pos: [usize; D]) -> usize {
        let mut off = 0usize;
        for a in (0..D).rev() {
            debug_assert!(pos[a] < self.dims[a]);
            off = off * self.dims[a] + pos[a];
        }
        off
    }

    /// Inverse of [`BrickDims::flatten`].
    #[inline]
    // Indexed loops read clearer than zip chains over parallel arrays here.
    #[allow(clippy::needless_range_loop)]
    pub fn unflatten(&self, mut off: usize) -> [usize; D] {
        let mut pos = [0usize; D];
        for a in 0..D {
            pos[a] = off % self.dims[a];
            off /= self.dims[a];
        }
        debug_assert_eq!(off, 0);
        pos
    }

    /// Resolve a possibly out-of-brick signed element offset into
    /// `(neighbor direction trits, wrapped in-brick coordinate)`.
    ///
    /// Each `pos[a]` may range over `-extent(a) .. 2*extent(a)`, i.e. one
    /// brick beyond either face, the reach needed by any stencil whose
    /// radius does not exceed the brick extent.
    #[inline]
    pub fn resolve(&self, pos: [isize; D]) -> ([i8; D], [usize; D]) {
        let mut trits = [0i8; D];
        let mut local = [0usize; D];
        for a in 0..D {
            let e = self.dims[a] as isize;
            let p = pos[a];
            debug_assert!(
                p >= -e && p < 2 * e,
                "element offset {p} out of the one-brick reach on axis {a}"
            );
            if p < 0 {
                trits[a] = -1;
                local[a] = (p + e) as usize;
            } else if p >= e {
                trits[a] = 1;
                local[a] = (p - e) as usize;
            } else {
                local[a] = p as usize;
            }
        }
        (trits, local)
    }
}

/// Map per-axis direction trits to the dense base-3 adjacency code used by
/// [`crate::info::BrickInfo`]: trit 0 → 0, +1 → 1, -1 → 2, axis 0 least
/// significant. Code 0 is "self". Matches `layout::Dir::code`.
#[inline]
pub fn trits_to_code<const D: usize>(trits: [i8; D]) -> usize {
    let mut c = 0usize;
    for a in (0..D).rev() {
        let t = match trits[a] {
            0 => 0usize,
            1 => 1,
            -1 => 2,
            _ => unreachable!(),
        };
        c = c * 3 + t;
    }
    c
}

/// Inverse of [`trits_to_code`].
#[inline]
// Indexed loops read clearer than zip chains over parallel arrays here.
#[allow(clippy::needless_range_loop)]
pub fn code_to_trits<const D: usize>(mut code: usize) -> [i8; D] {
    let mut trits = [0i8; D];
    for a in 0..D {
        trits[a] = match code % 3 {
            0 => 0,
            1 => 1,
            2 => -1,
            _ => unreachable!(),
        };
        code /= 3;
    }
    trits
}

/// Number of adjacency slots for `D` axes (`3^D`, including self).
#[inline]
pub const fn adjacency_size(d: usize) -> usize {
    let mut n = 1usize;
    let mut i = 0;
    while i < d {
        n *= 3;
        i += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let bd = BrickDims::new([4, 3, 2]);
        assert_eq!(bd.elements(), 24);
        for off in 0..24 {
            assert_eq!(bd.flatten(bd.unflatten(off)), off);
        }
        // Axis 0 is fastest.
        assert_eq!(bd.flatten([1, 0, 0]), 1);
        assert_eq!(bd.flatten([0, 1, 0]), 4);
        assert_eq!(bd.flatten([0, 0, 1]), 12);
    }

    #[test]
    fn resolve_in_brick() {
        let bd = BrickDims::<3>::cubic(8);
        let (t, l) = bd.resolve([3, 4, 5]);
        assert_eq!(t, [0, 0, 0]);
        assert_eq!(l, [3, 4, 5]);
    }

    #[test]
    fn resolve_across_faces() {
        let bd = BrickDims::<3>::cubic(8);
        let (t, l) = bd.resolve([-1, 0, 8]);
        assert_eq!(t, [-1, 0, 1]);
        assert_eq!(l, [7, 0, 0]);
        let (t, l) = bd.resolve([-8, 15, 7]);
        assert_eq!(t, [-1, 1, 0]);
        assert_eq!(l, [0, 7, 7]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn resolve_beyond_one_brick_panics() {
        let bd = BrickDims::<2>::cubic(4);
        bd.resolve([8, 0]);
    }

    #[test]
    fn code_roundtrip() {
        for code in 0..27 {
            assert_eq!(trits_to_code::<3>(code_to_trits::<3>(code)), code);
        }
        assert_eq!(trits_to_code::<3>([0, 0, 0]), 0);
        assert_eq!(adjacency_size(3), 27);
        assert_eq!(adjacency_size(2), 9);
    }

    #[test]
    fn code_matches_layout_dir_code() {
        // The adjacency code must agree with layout::Dir::code so the two
        // crates can share tables. Mirrors layout's trit convention.
        // +1 on axis 0 => code 1; -1 on axis 0 => code 2; +1 on axis 1 => 3.
        assert_eq!(trits_to_code::<3>([1, 0, 0]), 1);
        assert_eq!(trits_to_code::<3>([-1, 0, 0]), 2);
        assert_eq!(trits_to_code::<3>([0, 1, 0]), 3);
        assert_eq!(trits_to_code::<3>([0, 0, -1]), 18);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        BrickDims::new([8, 0, 8]);
    }
}
