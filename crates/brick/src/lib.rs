//! # brick — fine-grained data blocking with indirection
//!
//! Rust implementation of the brick data layout from Zhao et al. (SC'19,
//! P3HPC'18), the substrate of the PPoPP'21 pack-free communication paper:
//! structured data is broken into small fixed-size blocks ("bricks"),
//! each stored contiguously; a logical adjacency list ([`BrickInfo`])
//! decouples the computation's logical ordering from the physical storage
//! order, so the physical order can be chosen to optimize communication
//! while computation code stays unchanged.
//!
//! ```
//! use brick::{BrickDims, BrickGrid, BrickInfo, BrickView, BrickViewMut};
//!
//! // A periodic 3x3 grid of 4x4 bricks, lexicographic physical order.
//! let grid = BrickGrid::<2>::lexicographic([3, 3], true);
//! let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
//! let mut storage = info.allocate(1);
//!
//! // Write through the accessor, read across a brick face.
//! let b = grid.brick_at([0, 0]);
//! BrickViewMut::new(&info, &mut storage, 0).set(b, [3, 0], 7.0);
//! let right = BrickView::new(&info, &storage, 0).get(grid.brick_at([1, 0]), [-1, 0]);
//! assert_eq!(right, 7.0);
//! ```

#![warn(missing_docs)]

pub mod brickref;
pub mod dims;
pub mod grid;
pub mod info;
pub mod storage;

pub use brickref::{At, BrickView, BrickViewMut};
pub use dims::{adjacency_size, code_to_trits, trits_to_code, BrickDims};
pub use grid::BrickGrid;
pub use info::{BrickInfo, NO_BRICK};
pub use storage::{BrickStorage, HeapBacking, StorageBacking};
