//! The `Brick` accessor: logical element addressing with automatic
//! resolution into neighboring bricks, mirroring the paper's Figure 6
//! interface (`b[brickIndex][k][j][i]` where indices may step one brick
//! past either face).

use crate::dims::trits_to_code;
use crate::info::{BrickInfo, NO_BRICK};
use crate::storage::BrickStorage;

/// Read-only accessor over one field of a [`BrickStorage`].
///
/// `get(b, pos)` accepts per-axis positions in
/// `-extent .. 2*extent`; out-of-brick positions are transparently
/// resolved through the adjacency list, exactly like the C++ library's
/// `b[bidx][k-1][j][i+1]` accesses.
pub struct BrickView<'a, const D: usize> {
    info: &'a BrickInfo<D>,
    data: &'a [f64],
    step: usize,
    field_base: usize,
}

impl<'a, const D: usize> BrickView<'a, D> {
    /// View field `field` of `storage` through `info`'s logical order.
    pub fn new(info: &'a BrickInfo<D>, storage: &'a BrickStorage, field: usize) -> Self {
        assert!(field < storage.fields());
        assert_eq!(info.bricks(), storage.bricks(), "info/storage brick count mismatch");
        assert_eq!(
            info.brick_dims().elements(),
            storage.elements_per_brick(),
            "info/storage brick size mismatch"
        );
        BrickView {
            info,
            data: storage.as_slice(),
            step: storage.step(),
            field_base: field * storage.elements_per_brick(),
        }
    }

    /// The logical organization behind this view.
    #[inline]
    pub fn info(&self) -> &BrickInfo<D> {
        self.info
    }

    /// Element at a possibly out-of-brick position relative to brick `b`.
    /// Panics (debug) or returns 0.0 (release) when the access crosses a
    /// non-periodic boundary.
    #[inline]
    pub fn get(&self, b: u32, pos: [isize; D]) -> f64 {
        let (trits, local) = self.info.brick_dims().resolve(pos);
        let code = trits_to_code(trits);
        let target = if code == 0 { b } else { self.info.adjacent(b, code) };
        if target == NO_BRICK {
            debug_assert!(false, "access crosses a non-periodic boundary");
            return 0.0;
        }
        let off = target as usize * self.step
            + self.field_base
            + self.info.brick_dims().flatten(local);
        self.data[off]
    }

    /// In-brick element (all `pos[a] < extent(a)`), skipping neighbor
    /// resolution.
    #[inline]
    pub fn get_local(&self, b: u32, pos: [usize; D]) -> f64 {
        let off = b as usize * self.step
            + self.field_base
            + self.info.brick_dims().flatten(pos);
        self.data[off]
    }

    /// Reference to the element at a possibly out-of-brick position
    /// (the backing store of [`BrickView::get`]).
    #[inline]
    pub fn elem_ref(&self, b: u32, pos: [isize; D]) -> &f64 {
        let (trits, local) = self.info.brick_dims().resolve(pos);
        let code = trits_to_code(trits);
        let target = if code == 0 { b } else { self.info.adjacent(b, code) };
        assert_ne!(target, NO_BRICK, "access crosses a non-periodic boundary");
        &self.data[target as usize * self.step
            + self.field_base
            + self.info.brick_dims().flatten(local)]
    }
}

impl<'a, const D: usize> BrickView<'a, D> {
    /// The paper's Figure 6 interface, spelled `view.at(b)[[k, j, i]]`
    /// (stable Rust's `Index` cannot chain `[k][j][i]` by value, so the
    /// three indices travel as one array — note the index order matches
    /// the C++ `b[bidx][k][j][i]`: slowest axis first). Accesses that
    /// step past a brick face resolve through the adjacency list.
    ///
    /// ```
    /// use brick::{BrickDims, BrickGrid, BrickInfo, BrickView};
    /// let grid = BrickGrid::<3>::lexicographic([2; 3], true);
    /// let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
    /// let mut st = info.allocate(1);
    /// st.field_mut(1, 0)[0] = 7.0; // brick 1 = grid (1,0,0)
    /// let view = BrickView::new(&info, &st, 0);
    /// // One step past brick 0's +x face lands in brick 1.
    /// assert_eq!(view.at(0)[[0, 0, 4]], 7.0);
    /// ```
    pub fn at(&self, b: u32) -> At<'_, 'a, D> {
        At { view: self, b }
    }
}

/// A brick selected for Figure 6-style indexing.
#[derive(Clone, Copy)]
pub struct At<'v, 'a, const D: usize> {
    view: &'v BrickView<'a, D>,
    b: u32,
}

impl<'v, 'a, const D: usize> std::ops::Index<[isize; D]> for At<'v, 'a, D> {
    type Output = f64;
    /// Indices slowest-axis-first, matching the paper's `[k][j][i]`.
    fn index(&self, kji: [isize; D]) -> &f64 {
        let mut pos = [0isize; D];
        for a in 0..D {
            pos[a] = kji[D - 1 - a];
        }
        self.view.elem_ref(self.b, pos)
    }
}

/// Write accessor over one field; in-brick writes only (stencil outputs
/// never write into neighbors).
pub struct BrickViewMut<'a, const D: usize> {
    info: &'a BrickInfo<D>,
    data: &'a mut [f64],
    step: usize,
    field_base: usize,
}

impl<'a, const D: usize> BrickViewMut<'a, D> {
    /// Mutable view of field `field` of `storage`.
    pub fn new(info: &'a BrickInfo<D>, storage: &'a mut BrickStorage, field: usize) -> Self {
        assert!(field < storage.fields());
        assert_eq!(info.bricks(), storage.bricks());
        assert_eq!(info.brick_dims().elements(), storage.elements_per_brick());
        let step = storage.step();
        let field_base = field * storage.elements_per_brick();
        BrickViewMut { info, data: storage.as_mut_slice(), step, field_base }
    }

    /// Write an in-brick element.
    #[inline]
    pub fn set(&mut self, b: u32, pos: [usize; D], v: f64) {
        let off = b as usize * self.step
            + self.field_base
            + self.info.brick_dims().flatten(pos);
        self.data[off] = v;
    }

    /// Read an in-brick element back.
    #[inline]
    pub fn get_local(&self, b: u32, pos: [usize; D]) -> f64 {
        let off = b as usize * self.step
            + self.field_base
            + self.info.brick_dims().flatten(pos);
        self.data[off]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::BrickDims;
    use crate::grid::BrickGrid;

    /// Fill a 2-brick 1D chain and read across the face.
    #[test]
    fn cross_brick_read_1d() {
        let grid = BrickGrid::<1>::lexicographic([2], true);
        let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
        let mut st = info.allocate(1);
        for b in 0..2u32 {
            for i in 0..4 {
                st.field_mut(b, 0)[i] = (b * 10 + i as u32) as f64;
            }
        }
        let v = BrickView::new(&info, &st, 0);
        // In brick.
        assert_eq!(v.get(0, [2]), 2.0);
        // One step past the high face of brick 0 = element 0 of brick 1.
        assert_eq!(v.get(0, [4]), 10.0);
        // One step below brick 0 wraps (periodic) to last of brick 1.
        assert_eq!(v.get(0, [-1]), 13.0);
    }

    /// Brick addressing must agree with plain array addressing on a
    /// lexicographic grid: build a 2D domain both ways and compare.
    #[test]
    fn matches_array_semantics_2d() {
        let bx = 4usize;
        let gx = 3usize; // bricks per axis
        let n = bx * gx; // elements per axis
        let grid = BrickGrid::<2>::lexicographic([gx, gx], true);
        let info = BrickInfo::from_grid(BrickDims::cubic(bx), &grid);
        let mut st = info.allocate(1);

        // Global value function.
        let val = |x: usize, y: usize| (y * n + x) as f64;
        let mut array = vec![0.0; n * n];
        for y in 0..n {
            for x in 0..n {
                array[y * n + x] = val(x, y);
                let (bc, lc) = ([x / bx, y / bx], [x % bx, y % bx]);
                let b = grid.brick_at(bc);
                let off = lc[1] * bx + lc[0];
                st.field_mut(b, 0)[off] = val(x, y);
            }
        }

        let v = BrickView::new(&info, &st, 0);
        // Every element and every ±1 offset agrees with periodic array
        // indexing.
        for y in 0..n {
            for x in 0..n {
                let b = grid.brick_at([x / bx, y / bx]);
                let local = [(x % bx) as isize, (y % bx) as isize];
                for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        let ax = (x as isize + dx).rem_euclid(n as isize) as usize;
                        let ay = (y as isize + dy).rem_euclid(n as isize) as usize;
                        let expect = array[ay * n + ax];
                        let got = v.get(b, [local[0] + dx, local[1] + dy]);
                        assert_eq!(got, expect, "at ({x},{y}) offset ({dx},{dy})");
                    }
                }
            }
        }
    }

    /// The physical order must be invisible to logical accesses: a
    /// permuted grid returns identical values.
    #[test]
    fn layout_agnostic_access() {
        let bx = 4usize;
        let gx = 3usize;
        let order: Vec<u32> = {
            // An arbitrary fixed permutation.
            let mut v: Vec<u32> = (0..(gx * gx) as u32).collect();
            v.swap(0, 5);
            v.swap(2, 7);
            v.reverse();
            v
        };
        let lex = BrickGrid::<2>::lexicographic([gx, gx], true);
        let perm = BrickGrid::<2>::from_order([gx, gx], true, &order);

        let mk = |grid: &BrickGrid<2>| {
            let info = BrickInfo::from_grid(BrickDims::cubic(bx), grid);
            let mut st = info.allocate(1);
            let n = bx * gx;
            for y in 0..n {
                for x in 0..n {
                    let b = grid.brick_at([x / bx, y / bx]);
                    let off = (y % bx) * bx + (x % bx);
                    st.field_mut(b, 0)[off] = (y * n + x) as f64;
                }
            }
            (info, st)
        };
        let (i1, s1) = mk(&lex);
        let (i2, s2) = mk(&perm);
        let v1 = BrickView::new(&i1, &s1, 0);
        let v2 = BrickView::new(&i2, &s2, 0);
        let n = bx * gx;
        for y in 0..n {
            for x in 0..n {
                let b1 = lex.brick_at([x / bx, y / bx]);
                let b2 = perm.brick_at([x / bx, y / bx]);
                let p = [(x % bx) as isize - 1, (y % bx) as isize + 1];
                assert_eq!(v1.get(b1, p), v2.get(b2, p));
            }
        }
    }

    #[test]
    fn mutable_view_roundtrip() {
        let grid = BrickGrid::<1>::lexicographic([2], true);
        let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
        let mut st = info.allocate(2);
        {
            let mut w = BrickViewMut::new(&info, &mut st, 1);
            w.set(1, [3], 9.5);
            assert_eq!(w.get_local(1, [3]), 9.5);
        }
        let r = BrickView::new(&info, &st, 1);
        assert_eq!(r.get(1, [3]), 9.5);
        // Field 0 untouched.
        let r0 = BrickView::new(&info, &st, 0);
        assert_eq!(r0.get(1, [3]), 0.0);
    }
}

#[cfg(test)]
mod figure6_tests {
    use super::*;
    use crate::dims::BrickDims;
    use crate::grid::BrickGrid;

    /// The paper's Figure 6 loop, verbatim in spirit: a 7-point stencil
    /// written with `at(b)[[k, j, i]]` indexing.
    #[test]
    fn figure6_style_stencil() {
        let grid = BrickGrid::<3>::lexicographic([2; 3], true);
        let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
        let mut st = info.allocate(1);
        let n = 8;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let b = grid.brick_at([x / 4, y / 4, z / 4]);
                    st.field_mut(b, 0)[((z % 4) * 4 + y % 4) * 4 + x % 4] =
                        ((x + 2 * y + 3 * z) % 7) as f64;
                }
            }
        }
        let mut out = info.allocate(1);
        let c = [0.4, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1];
        {
            let bview = BrickView::new(&info, &st, 0);
            let mut aview = BrickViewMut::new(&info, &mut out, 0);
            for brick_index in 0..info.bricks() as u32 {
                let b = bview.at(brick_index);
                for k in 0..4isize {
                    for j in 0..4isize {
                        for i in 0..4isize {
                            let v = c[0] * b[[k, j, i]]
                                + c[1] * b[[k - 1, j, i]]
                                + c[2] * b[[k + 1, j, i]]
                                + c[3] * b[[k, j - 1, i]]
                                + c[4] * b[[k, j + 1, i]]
                                + c[5] * b[[k, j, i - 1]]
                                + c[6] * b[[k, j, i + 1]];
                            aview.set(brick_index, [i as usize, j as usize, k as usize], v);
                        }
                    }
                }
            }
        }
        // Cross-check one point against get().
        let bview = BrickView::new(&info, &st, 0);
        let expect = c[0] * bview.get(0, [1, 1, 1])
            + c[1] * bview.get(0, [1, 1, 0])
            + c[2] * bview.get(0, [1, 1, 2])
            + c[3] * bview.get(0, [1, 0, 1])
            + c[4] * bview.get(0, [1, 2, 1])
            + c[5] * bview.get(0, [0, 1, 1])
            + c[6] * bview.get(0, [2, 1, 1]);
        let got = BrickView::new(&info, &out, 0).get(0, [1, 1, 1]);
        assert!((got - expect).abs() < 1e-15);
    }

    #[test]
    fn at_index_order_is_kji() {
        let grid = BrickGrid::<3>::lexicographic([1; 3], true);
        let info = BrickInfo::from_grid(BrickDims::new([4, 3, 2]), &grid);
        let mut st = info.allocate(1);
        // Element (x=3, y=2, z=1).
        st.field_mut(0, 0)[(3 + 2) * 4 + 3] = 5.0;
        let v = BrickView::new(&info, &st, 0);
        assert_eq!(v.at(0)[[1, 2, 3]], 5.0); // [k, j, i] = [z, y, x]
    }

    #[test]
    #[should_panic(expected = "non-periodic boundary")]
    fn at_across_missing_neighbor_panics() {
        let grid = BrickGrid::<3>::lexicographic([1; 3], false);
        let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
        let st = info.allocate(1);
        let v = BrickView::new(&info, &st, 0);
        let _ = v.at(0)[[0, 0, -1]];
    }
}
