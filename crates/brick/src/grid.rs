//! Logical brick grids: the map between grid coordinates and physical
//! brick indices. The *ordering* of this map is exactly the layout
//! indirection the paper exploits — computation never sees it, only the
//! adjacency list derived from it.

use crate::dims::{adjacency_size, code_to_trits};

/// A `D`-dimensional logical grid of bricks with an arbitrary assignment
/// of physical brick indices to grid coordinates.
#[derive(Clone, Debug)]
pub struct BrickGrid<const D: usize> {
    dims: [usize; D],
    periodic: bool,
    /// `index[lex(coord)]` = physical brick index of the brick at `coord`.
    index: Vec<u32>,
    /// Inverse: `coord_of[brick] = lex(coord)`.
    coord_of: Vec<u32>,
}

impl<const D: usize> BrickGrid<D> {
    /// Grid with lexicographic physical order (brick index = lex(coord)),
    /// the "No-Layout" baseline of the paper's Figure 10.
    pub fn lexicographic(dims: [usize; D], periodic: bool) -> Self {
        let n = dims.iter().product::<usize>();
        assert!(n > 0 && n <= u32::MAX as usize);
        let index: Vec<u32> = (0..n as u32).collect();
        let coord_of = index.clone();
        BrickGrid { dims, periodic, index, coord_of }
    }

    /// Grid with an explicit physical-order permutation: `order[i]` is the
    /// lex coordinate of the brick stored `i`-th.
    pub fn from_order(dims: [usize; D], periodic: bool, order: &[u32]) -> Self {
        let n = dims.iter().product::<usize>();
        assert_eq!(order.len(), n, "order must cover every grid cell");
        let mut index = vec![u32::MAX; n];
        for (brick, &lex) in order.iter().enumerate() {
            assert!((lex as usize) < n, "coordinate out of range");
            assert_eq!(index[lex as usize], u32::MAX, "duplicate coordinate in order");
            index[lex as usize] = brick as u32;
        }
        BrickGrid { dims, periodic, index, coord_of: order.to_vec() }
    }

    /// Grid extents in bricks.
    pub fn dims(&self) -> [usize; D] {
        self.dims
    }

    /// Whether neighbor lookups wrap around the grid.
    pub fn periodic(&self) -> bool {
        self.periodic
    }

    /// Total bricks.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Lexicographic rank of a grid coordinate (axis 0 fastest).
    #[inline]
    pub fn lex(&self, coord: [usize; D]) -> usize {
        let mut r = 0usize;
        for a in (0..D).rev() {
            debug_assert!(coord[a] < self.dims[a]);
            r = r * self.dims[a] + coord[a];
        }
        r
    }

    /// Inverse of [`BrickGrid::lex`].
    #[inline]
    // Indexed loops read clearer than zip chains over parallel arrays here.
    #[allow(clippy::needless_range_loop)]
    pub fn unlex(&self, mut r: usize) -> [usize; D] {
        let mut c = [0usize; D];
        for a in 0..D {
            c[a] = r % self.dims[a];
            r /= self.dims[a];
        }
        c
    }

    /// Physical brick index at a grid coordinate.
    #[inline]
    pub fn brick_at(&self, coord: [usize; D]) -> u32 {
        self.index[self.lex(coord)]
    }

    /// Grid coordinate of a physical brick.
    #[inline]
    pub fn coord_of(&self, brick: u32) -> [usize; D] {
        self.unlex(self.coord_of[brick as usize] as usize)
    }

    /// Neighbor brick of `coord` in the direction given by per-axis trits,
    /// or `None` at a non-periodic boundary.
    pub fn neighbor(&self, coord: [usize; D], trits: [i8; D]) -> Option<u32> {
        let mut c = [0usize; D];
        for a in 0..D {
            let n = self.dims[a] as isize;
            let mut p = coord[a] as isize + trits[a] as isize;
            if p < 0 || p >= n {
                if !self.periodic {
                    return None;
                }
                p = (p + n) % n;
            }
            c[a] = p as usize;
        }
        Some(self.brick_at(c))
    }

    /// Build the dense adjacency table: for each physical brick, the
    /// physical index of its neighbor for every base-3 direction code
    /// (`3^D` entries; code 0 is the brick itself). Missing neighbors (at
    /// a non-periodic boundary) map to [`crate::info::NO_BRICK`].
    pub fn adjacency(&self) -> Vec<u32> {
        let adj_n = adjacency_size(D);
        let mut adj = vec![crate::info::NO_BRICK; self.len() * adj_n];
        for brick in 0..self.len() as u32 {
            let coord = self.coord_of(brick);
            let base = brick as usize * adj_n;
            for code in 0..adj_n {
                let trits = code_to_trits::<D>(code);
                if let Some(nb) = self.neighbor(coord, trits) {
                    adj[base + code] = nb;
                }
            }
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::trits_to_code;
    use crate::info::NO_BRICK;

    #[test]
    fn lex_roundtrip() {
        let g = BrickGrid::lexicographic([3, 4, 5], true);
        for r in 0..60 {
            assert_eq!(g.lex(g.unlex(r)), r);
        }
    }

    #[test]
    fn lexicographic_identity() {
        let g = BrickGrid::<2>::lexicographic([4, 4], false);
        assert_eq!(g.brick_at([2, 1]), 6);
        assert_eq!(g.coord_of(6), [2, 1]);
    }

    #[test]
    fn periodic_neighbors_wrap() {
        let g = BrickGrid::<1>::lexicographic([4], true);
        assert_eq!(g.neighbor([0], [-1]), Some(3));
        assert_eq!(g.neighbor([3], [1]), Some(0));
    }

    #[test]
    fn nonperiodic_boundary_is_none() {
        let g = BrickGrid::<1>::lexicographic([4], false);
        assert_eq!(g.neighbor([0], [-1]), None);
        assert_eq!(g.neighbor([3], [1]), None);
        assert_eq!(g.neighbor([1], [1]), Some(2));
    }

    #[test]
    fn permuted_order_roundtrips() {
        // Reverse order: brick 0 stored where lex 5 is, etc.
        let order: Vec<u32> = (0..6u32).rev().collect();
        let g = BrickGrid::<2>::from_order([3, 2], true, &order);
        for b in 0..6u32 {
            let c = g.coord_of(b);
            assert_eq!(g.brick_at(c), b);
        }
        assert_eq!(g.brick_at([0, 0]), 5);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_order_rejected() {
        BrickGrid::<1>::from_order([3], true, &[0, 0, 2]);
    }

    #[test]
    fn adjacency_table_consistency() {
        let g = BrickGrid::<2>::lexicographic([3, 3], true);
        let adj = g.adjacency();
        let an = adjacency_size(2);
        // Self code is 0.
        for b in 0..9usize {
            assert_eq!(adj[b * an], b as u32);
        }
        // Right neighbor of (2,0) wraps to (0,0).
        let b = g.brick_at([2, 0]) as usize;
        let right = trits_to_code::<2>([1, 0]);
        assert_eq!(adj[b * an + right], g.brick_at([0, 0]));
    }

    #[test]
    fn adjacency_nonperiodic_edges_missing() {
        let g = BrickGrid::<2>::lexicographic([2, 2], false);
        let adj = g.adjacency();
        let an = adjacency_size(2);
        let left = trits_to_code::<2>([-1, 0]);
        assert_eq!(adj[g.brick_at([0, 0]) as usize * an + left], NO_BRICK);
        assert_eq!(
            adj[g.brick_at([1, 0]) as usize * an + left],
            g.brick_at([0, 0])
        );
    }
}
