//! Physical brick storage: one contiguous run of `f64`s holding all
//! bricks, optionally multi-field interleaved (array-of-structure-of-array
//! as in the paper's Section 6), and optionally backed by a memory-mapped
//! file supplied by an external backing.

/// Abstract backing memory for a [`BrickStorage`]. The default heap
/// backing is [`HeapBacking`]; the `memview` crate provides an
/// mmap-over-`memfd` backing enabling the paper's MemMap views.
pub trait StorageBacking: Send + Sync {
    /// The whole backing as elements.
    fn as_slice(&self) -> &[f64];
    /// The whole backing as mutable elements.
    fn as_mut_slice(&mut self) -> &mut [f64];
}

/// Plain heap backing.
pub struct HeapBacking {
    data: Vec<f64>,
}

impl HeapBacking {
    /// Zero-initialized heap backing of `len` elements.
    pub fn new(len: usize) -> Self {
        HeapBacking { data: vec![0.0; len] }
    }
}

impl StorageBacking for HeapBacking {
    fn as_slice(&self) -> &[f64] {
        &self.data
    }
    fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// All bricks of (possibly several interleaved fields of) one subdomain.
///
/// Brick `b` occupies elements `b*step .. (b+1)*step` where
/// `step = fields * elements_per_brick`; field `f` of brick `b` is the
/// sub-range `b*step + f*elems .. b*step + (f+1)*elems`. Interleaving
/// fields this way lets one exchange move every field at once.
pub struct BrickStorage {
    backing: Box<dyn StorageBacking>,
    nbricks: usize,
    fields: usize,
    elems: usize,
}

impl BrickStorage {
    /// Heap-allocated storage for `nbricks` bricks of `elems` elements
    /// each, with `fields` interleaved fields.
    pub fn allocate(nbricks: usize, elems: usize, fields: usize) -> Self {
        assert!(fields >= 1 && elems >= 1);
        let backing = Box::new(HeapBacking::new(nbricks * elems * fields));
        BrickStorage { backing, nbricks, fields, elems }
    }

    /// Storage over an externally provided backing (e.g. an mmap of a
    /// `memfd` file). The backing must hold exactly
    /// `nbricks * elems * fields` elements.
    pub fn from_backing(
        backing: Box<dyn StorageBacking>,
        nbricks: usize,
        elems: usize,
        fields: usize,
    ) -> Self {
        assert!(fields >= 1 && elems >= 1);
        assert_eq!(
            backing.as_slice().len(),
            nbricks * elems * fields,
            "backing size must match brick geometry"
        );
        BrickStorage { backing, nbricks, fields, elems }
    }

    /// Number of bricks (including any alignment filler bricks).
    #[inline]
    pub fn bricks(&self) -> usize {
        self.nbricks
    }

    /// Interleaved fields per brick.
    #[inline]
    pub fn fields(&self) -> usize {
        self.fields
    }

    /// Elements per field per brick.
    #[inline]
    pub fn elements_per_brick(&self) -> usize {
        self.elems
    }

    /// Elements per brick across all fields (the brick stride).
    #[inline]
    pub fn step(&self) -> usize {
        self.elems * self.fields
    }

    /// The whole storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        self.backing.as_slice()
    }

    /// The whole storage, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.backing.as_mut_slice()
    }

    /// One brick (all fields).
    #[inline]
    pub fn brick(&self, b: u32) -> &[f64] {
        let s = self.step();
        &self.backing.as_slice()[b as usize * s..(b as usize + 1) * s]
    }

    /// One brick (all fields), mutable.
    #[inline]
    pub fn brick_mut(&mut self, b: u32) -> &mut [f64] {
        let s = self.step();
        &mut self.backing.as_mut_slice()[b as usize * s..(b as usize + 1) * s]
    }

    /// One field of one brick.
    #[inline]
    pub fn field(&self, b: u32, f: usize) -> &[f64] {
        debug_assert!(f < self.fields);
        let base = b as usize * self.step() + f * self.elems;
        &self.backing.as_slice()[base..base + self.elems]
    }

    /// One field of one brick, mutable.
    #[inline]
    pub fn field_mut(&mut self, b: u32, f: usize) -> &mut [f64] {
        debug_assert!(f < self.fields);
        let base = b as usize * self.step() + f * self.elems;
        &mut self.backing.as_mut_slice()[base..base + self.elems]
    }

    /// Element offset (into [`BrickStorage::as_slice`]) of `(brick,
    /// field, in-field element offset)`.
    #[inline]
    pub fn offset_of(&self, b: u32, f: usize, elem: usize) -> usize {
        debug_assert!(f < self.fields && elem < self.elems);
        b as usize * self.step() + f * self.elems + elem
    }

    /// Fill all elements with a value (tests / initialization).
    pub fn fill(&mut self, v: f64) {
        self.backing.as_mut_slice().fill(v);
    }

    /// Copy the full contents from another storage of identical geometry.
    pub fn copy_from(&mut self, other: &BrickStorage) {
        assert_eq!(self.nbricks, other.nbricks);
        assert_eq!(self.fields, other.fields);
        assert_eq!(self.elems, other.elems);
        self.backing
            .as_mut_slice()
            .copy_from_slice(other.backing.as_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let s = BrickStorage::allocate(10, 512, 2);
        assert_eq!(s.bricks(), 10);
        assert_eq!(s.step(), 1024);
        assert_eq!(s.as_slice().len(), 10240);
        assert_eq!(s.brick(3).len(), 1024);
        assert_eq!(s.field(3, 1).len(), 512);
    }

    #[test]
    fn field_interleaving_layout() {
        let mut s = BrickStorage::allocate(2, 4, 2);
        s.field_mut(1, 0).fill(1.0);
        s.field_mut(1, 1).fill(2.0);
        let all = s.as_slice();
        // Brick 0 untouched.
        assert!(all[..8].iter().all(|&x| x == 0.0));
        // Brick 1: field 0 then field 1.
        assert!(all[8..12].iter().all(|&x| x == 1.0));
        assert!(all[12..16].iter().all(|&x| x == 2.0));
    }

    #[test]
    fn offset_of_matches_slices() {
        let mut s = BrickStorage::allocate(3, 8, 2);
        let off = s.offset_of(2, 1, 5);
        s.as_mut_slice()[off] = 42.0;
        assert_eq!(s.field(2, 1)[5], 42.0);
    }

    #[test]
    fn external_backing() {
        let backing = Box::new(HeapBacking::new(64));
        let mut s = BrickStorage::from_backing(backing, 4, 8, 2);
        s.fill(7.0);
        assert!(s.as_slice().iter().all(|&x| x == 7.0));
    }

    #[test]
    #[should_panic(expected = "backing size")]
    fn wrong_backing_size_rejected() {
        let backing = Box::new(HeapBacking::new(63));
        BrickStorage::from_backing(backing, 4, 8, 2);
    }

    #[test]
    fn copy_from_roundtrip() {
        let mut a = BrickStorage::allocate(2, 4, 1);
        let mut b = BrickStorage::allocate(2, 4, 1);
        a.fill(3.0);
        b.copy_from(&a);
        assert_eq!(b.as_slice(), a.as_slice());
    }
}
