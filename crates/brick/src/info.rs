//! `BrickInfo` — the logical organization of bricks: an adjacency list
//! decoupling logical neighbor relationships from physical storage order.

use crate::dims::{adjacency_size, trits_to_code, BrickDims};
use crate::grid::BrickGrid;
use crate::storage::BrickStorage;

/// Sentinel for "no neighbor" (non-periodic boundary).
pub const NO_BRICK: u32 = u32::MAX;

/// Logical brick organization: per-brick adjacency over the `3^D`
/// direction codes. Mirrors the paper's `BrickInfo` (Section 6): storage
/// order can be arbitrary; computation follows this graph.
#[derive(Clone, Debug)]
pub struct BrickInfo<const D: usize> {
    bdims: BrickDims<D>,
    nbricks: usize,
    adjacency: Vec<u32>,
}

impl<const D: usize> BrickInfo<D> {
    /// Build from a logical grid.
    pub fn from_grid(bdims: BrickDims<D>, grid: &BrickGrid<D>) -> Self {
        BrickInfo { bdims, nbricks: grid.len(), adjacency: grid.adjacency() }
    }

    /// Build from a raw adjacency table (`nbricks * 3^D` entries).
    pub fn from_adjacency(bdims: BrickDims<D>, nbricks: usize, adjacency: Vec<u32>) -> Self {
        assert_eq!(adjacency.len(), nbricks * adjacency_size(D));
        for (i, &nb) in adjacency.iter().enumerate() {
            assert!(
                nb == NO_BRICK || (nb as usize) < nbricks,
                "adjacency entry {i} out of range"
            );
        }
        BrickInfo { bdims, nbricks, adjacency }
    }

    /// Brick extents.
    #[inline]
    pub fn brick_dims(&self) -> BrickDims<D> {
        self.bdims
    }

    /// Number of bricks.
    #[inline]
    pub fn bricks(&self) -> usize {
        self.nbricks
    }

    /// Neighbor of brick `b` for a base-3 direction code (code 0 = self).
    /// Returns [`NO_BRICK`] at non-periodic boundaries.
    #[inline]
    pub fn adjacent(&self, b: u32, code: usize) -> u32 {
        debug_assert!(code < adjacency_size(D));
        self.adjacency[b as usize * adjacency_size(D) + code]
    }

    /// Neighbor of brick `b` along per-axis trits.
    #[inline]
    pub fn adjacent_trits(&self, b: u32, trits: [i8; D]) -> u32 {
        self.adjacent(b, trits_to_code(trits))
    }

    /// The full adjacency row of a brick (`3^D` entries).
    #[inline]
    pub fn adjacency_row(&self, b: u32) -> &[u32] {
        let n = adjacency_size(D);
        &self.adjacency[b as usize * n..(b as usize + 1) * n]
    }

    /// Heap-allocate storage matching this info, with `fields`
    /// interleaved fields (the paper's `bInfo.allocate(bSize)`).
    pub fn allocate(&self, fields: usize) -> BrickStorage {
        BrickStorage::allocate(self.nbricks, self.bdims.elements(), fields)
    }

    /// Sanity-check the adjacency: self codes point to self, and mutual
    /// neighbor links are inverse (a's +x neighbor has a as its -x
    /// neighbor), which any grid-derived adjacency satisfies.
    pub fn validate(&self) {
        let n = adjacency_size(D);
        for b in 0..self.nbricks as u32 {
            assert_eq!(self.adjacent(b, 0), b, "self code must map to self");
            for code in 1..n {
                let nb = self.adjacent(b, code);
                if nb == NO_BRICK {
                    continue;
                }
                let trits = crate::dims::code_to_trits::<D>(code);
                let mut inv = trits;
                for t in inv.iter_mut() {
                    *t = -*t;
                }
                let back = self.adjacent_trits(nb, inv);
                assert_eq!(
                    back, b,
                    "neighbor links must be mutual (brick {b}, code {code})"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_info() -> BrickInfo<2> {
        let grid = BrickGrid::<2>::lexicographic([3, 3], true);
        BrickInfo::from_grid(BrickDims::cubic(4), &grid)
    }

    #[test]
    fn from_grid_and_validate() {
        let info = small_info();
        assert_eq!(info.bricks(), 9);
        info.validate();
    }

    #[test]
    fn adjacent_matches_grid() {
        let grid = BrickGrid::<2>::lexicographic([3, 3], true);
        let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
        let b = grid.brick_at([1, 1]);
        assert_eq!(info.adjacent_trits(b, [1, 0]), grid.brick_at([2, 1]));
        assert_eq!(info.adjacent_trits(b, [-1, -1]), grid.brick_at([0, 0]));
    }

    #[test]
    fn allocate_geometry() {
        let info = small_info();
        let st = info.allocate(2);
        assert_eq!(st.bricks(), 9);
        assert_eq!(st.elements_per_brick(), 16);
        assert_eq!(st.fields(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_adjacency_rejected() {
        BrickInfo::<1>::from_adjacency(BrickDims::cubic(4), 2, vec![0, 1, 1, 99, 0, 0]);
    }

    #[test]
    fn validate_on_permuted_grid() {
        let order: Vec<u32> = (0..9u32).rev().collect();
        let grid = BrickGrid::<2>::from_order([3, 3], true, &order);
        let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
        info.validate();
    }

    #[test]
    fn nonperiodic_validate() {
        let grid = BrickGrid::<2>::lexicographic([3, 3], false);
        let info = BrickInfo::from_grid(BrickDims::cubic(4), &grid);
        info.validate();
        let corner = grid.brick_at([0, 0]);
        assert_eq!(info.adjacent_trits(corner, [-1, 0]), NO_BRICK);
    }
}
