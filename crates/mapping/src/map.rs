//! Rank-permutation mappers: the lexicographic baseline, geometric
//! recursive bisection (arXiv 2005.09521's grouping strategy), and a
//! grid2grid-style greedy `optimal_reordering` over the measured
//! communication graph.
//!
//! All mappers return `perm[cartesian rank] = physical rank`; physical
//! ranks `[k·r, (k+1)·r)` share node `k` (see
//! [`netsim::hier::NodeShape`]). Feed the permutation to
//! [`netsim::CartTopo::with_permutation`] to remap a run.

use netsim::hier::NodeShape;
use netsim::CartTopo;

use crate::graph::CommGraph;

/// Which mapper a run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MappingPolicy {
    /// Identity: cartesian rank `r` runs as physical rank `r` — MPI's
    /// default placement and the paper's baseline.
    #[default]
    Lex,
    /// Geometric recursive bisection into node-sized boxes.
    Bisect,
    /// Joint (layout × mapping) annealing under the hierarchical model.
    Joint,
}

impl MappingPolicy {
    /// CLI/report label.
    pub fn label(&self) -> &'static str {
        match self {
            MappingPolicy::Lex => "lex",
            MappingPolicy::Bisect => "bisect",
            MappingPolicy::Joint => "joint",
        }
    }

    /// Parse a CLI argument.
    pub fn parse(s: &str) -> Option<MappingPolicy> {
        match s {
            "lex" => Some(MappingPolicy::Lex),
            "bisect" => Some(MappingPolicy::Bisect),
            "joint" => Some(MappingPolicy::Joint),
            _ => None,
        }
    }
}

/// The identity (lexicographic) mapping over `ranks` ranks.
pub fn lexicographic(ranks: usize) -> Vec<usize> {
    (0..ranks).collect()
}

/// Geometric recursive bisection: cut the cartesian grid along its
/// longest axis into two contiguous boxes (cut position rounded to a
/// node-capacity multiple so no node straddles the cut), recurse until
/// every part fits on one node, then number the parts in emission
/// order. Nearby grid positions land on the same node, so the node
/// surface — and with it the off-node byte volume — shrinks versus the
/// lexicographic slab grouping.
pub fn recursive_bisection(topo: &CartTopo, node: &NodeShape) -> Vec<usize> {
    let n = topo.size();
    let rpn = node.ranks_per_node();
    // (coords, cart rank) of every grid position.
    let cells: Vec<(Vec<usize>, usize)> = (0..n).map(|r| (topo.coords(r), r)).collect();
    let mut perm = vec![0usize; n];
    let mut next = 0usize;
    bisect(cells, rpn, &mut perm, &mut next);
    perm
}

fn bisect(mut cells: Vec<(Vec<usize>, usize)>, rpn: usize, perm: &mut [usize], next: &mut usize) {
    if cells.len() <= rpn {
        // One node's worth: order within the node is irrelevant to the
        // on/off-node split; keep cartesian order for determinism.
        cells.sort_by_key(|(_, r)| *r);
        for (_, r) in cells {
            perm[r] = *next;
            *next += 1;
        }
        return;
    }
    // Longest axis of this part's bounding box.
    let d = cells[0].0.len();
    let axis = (0..d)
        .max_by_key(|&a| {
            let lo = cells.iter().map(|(c, _)| c[a]).min().unwrap_or(0);
            let hi = cells.iter().map(|(c, _)| c[a]).max().unwrap_or(0);
            hi - lo
        })
        .unwrap_or(0);
    cells.sort_by(|(ca, ra), (cb, rb)| ca[axis].cmp(&cb[axis]).then(ra.cmp(rb)));
    // Balanced cut, snapped to a node-capacity multiple when possible.
    let half = cells.len() / 2;
    let mut cut = (half / rpn) * rpn;
    if cut == 0 {
        cut = half.max(1);
    }
    let rest = cells.split_off(cut);
    bisect(cells, rpn, perm, next);
    bisect(rest, rpn, perm, next);
}

/// grid2grid-style greedy reordering over the measured communication
/// graph: fill one node at a time, seeding with the heaviest unassigned
/// sender and repeatedly pulling in the unassigned rank with the most
/// traffic to the group built so far. Works on any graph (no grid
/// assumption), so it also covers irregular decompositions.
pub fn optimal_reordering(g: &CommGraph, node: &NodeShape) -> Vec<usize> {
    let n = g.ranks();
    let rpn = node.ranks_per_node();
    let mut assigned = vec![false; n];
    let mut perm = vec![0usize; n];
    let mut next = 0usize;
    while next < n {
        // Seed: heaviest-total-volume unassigned rank (ties: lowest id).
        let seed = (0..n)
            .filter(|&r| !assigned[r])
            .max_by_key(|&r| (g.send_volume(r), usize::MAX - r))
            .expect("unassigned rank must exist while next < n");
        let mut group = vec![seed];
        assigned[seed] = true;
        while group.len() < rpn && next + group.len() < n {
            let best = (0..n)
                .filter(|&r| !assigned[r])
                .max_by_key(|&r| {
                    let vol: u64 = group.iter().map(|&m| g.volume_between(r, m)).sum();
                    (vol, usize::MAX - r)
                });
            match best {
                Some(r) => {
                    assigned[r] = true;
                    group.push(r);
                }
                None => break,
            }
        }
        for r in group {
            perm[r] = next;
            next += 1;
        }
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DirLoad;

    fn star_loads(d: usize) -> Vec<DirLoad> {
        let mut loads = Vec::new();
        for axis in 0..d {
            for sign in [-1i8, 1] {
                let mut trits = vec![0i8; d];
                trits[axis] = sign;
                loads.push(DirLoad { trits, msgs: 1, bytes: 1000 });
            }
        }
        loads
    }

    fn is_bijection(perm: &[usize]) -> bool {
        let mut seen = vec![false; perm.len()];
        perm.iter().all(|&p| {
            if p >= seen.len() || seen[p] {
                return false;
            }
            seen[p] = true;
            true
        })
    }

    #[test]
    fn policies_parse_and_label() {
        for p in [MappingPolicy::Lex, MappingPolicy::Bisect, MappingPolicy::Joint] {
            assert_eq!(MappingPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(MappingPolicy::parse("magic"), None);
        assert_eq!(MappingPolicy::default(), MappingPolicy::Lex);
    }

    #[test]
    fn bisection_builds_compact_nodes() {
        // 8x8x8 torus, 8 ranks/node: lexicographic nodes are 8x1x1
        // rows (2 on-node face neighbors per cell, both along the
        // wrapped x axis); bisection finds 2x2x2 cubes (3 per cell).
        let topo = CartTopo::new(&[8, 8, 8], true);
        let node = NodeShape::new(8);
        let g = CommGraph::from_dir_loads(&topo, &star_loads(3));
        let bisect = recursive_bisection(&topo, &node);
        assert!(is_bijection(&bisect));
        let lex = lexicographic(512);
        let s_lex = g.split(&lex, &node);
        let s_bis = g.split(&bisect, &node);
        assert!(
            s_bis.off_bytes < s_lex.off_bytes,
            "bisection {} must beat lex {}",
            s_bis.off_bytes,
            s_lex.off_bytes
        );
        assert_eq!(s_bis.on_bytes, 512 * 3 * 1000);
        assert_eq!(s_lex.on_bytes, 512 * 2 * 1000);
    }

    #[test]
    fn bisection_handles_ragged_node_sizes() {
        let topo = CartTopo::new(&[3, 3], true);
        let node = NodeShape::new(4);
        let perm = recursive_bisection(&topo, &node);
        assert!(is_bijection(&perm));
    }

    #[test]
    fn greedy_reordering_groups_heavy_neighbors() {
        let topo = CartTopo::new(&[4, 4], true);
        let node = NodeShape::new(4);
        let g = CommGraph::from_dir_loads(&topo, &star_loads(2));
        let perm = optimal_reordering(&g, &node);
        assert!(is_bijection(&perm));
        let s_lex = g.split(&lexicographic(16), &node);
        let s_greedy = g.split(&perm, &node);
        assert!(
            s_greedy.off_bytes <= s_lex.off_bytes,
            "greedy {} must not lose to lex {}",
            s_greedy.off_bytes,
            s_lex.off_bytes
        );
    }
}
