//! # mapping — topology-aware process-to-node mapping
//!
//! MPI's default lexicographic placement slices a Cartesian decomposition
//! into 1-D slabs of ranks per node, so most ghost-zone neighbors sit
//! across the fabric. This crate turns the decomposition's communication
//! structure into an explicit graph and searches for rank permutations
//! that keep heavy neighbors on the same node of a
//! [`netsim::HierarchicalNetworkModel`]:
//!
//! - [`CommGraph`] / [`DirLoad`]: the per-rank communication-volume graph
//!   extracted from decomp adjacency plus the bound exchange schedule,
//!   and its [`TrafficSplit`] / modeled-time evaluation under a mapping,
//! - [`lexicographic`]: the identity baseline,
//! - [`recursive_bisection`]: geometric grouping into node-sized boxes
//!   (the strategy of arXiv 2005.09521),
//! - [`optimal_reordering`]: grid2grid-style greedy node filling over the
//!   measured graph (no grid assumption),
//! - [`joint_anneal`]: co-optimization of (region layout × rank mapping)
//!   under the two-tier model, seeded so it never loses to either
//!   optimization alone.
//!
//! Every mapper returns `perm[cartesian rank] = physical rank`; hand the
//! result to [`netsim::CartTopo::with_permutation`] and every exchange
//! engine runs remapped unchanged.
//!
//! ```
//! use mapping::{lexicographic, recursive_bisection, CommGraph, DirLoad};
//! use netsim::{CartTopo, NodeShape};
//!
//! let topo = CartTopo::new(&[4, 4, 4], true);
//! let node = NodeShape::new(8);
//! let loads: Vec<DirLoad> = (0..3)
//!     .flat_map(|a| [-1i8, 1].map(|s| {
//!         let mut trits = vec![0i8; 3];
//!         trits[a] = s;
//!         DirLoad { trits, msgs: 1, bytes: 4096 }
//!     }))
//!     .collect();
//! let g = CommGraph::from_dir_loads(&topo, &loads);
//! let bisect = g.split(&recursive_bisection(&topo, &node), &node);
//! let lex = g.split(&lexicographic(topo.size()), &node);
//! assert!(bisect.off_bytes <= lex.off_bytes);
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod joint;
pub mod map;

pub use graph::{CommGraph, DirLoad, TrafficSplit};
pub use joint::{joint_anneal, schedule_loads, JointConfig, JointResult};
pub use map::{lexicographic, optimal_reordering, recursive_bisection, MappingPolicy};
