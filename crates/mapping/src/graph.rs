//! Per-rank communication-volume graph and its evaluation under a
//! node grouping.
//!
//! The graph is extracted from decomp adjacency plus the bound exchange
//! schedule: every rank sends the same per-direction message runs (the
//! torus is translation-invariant), so the whole graph is determined by
//! one rank's [`DirLoad`] table — `(direction, messages, bytes)` per
//! neighbor offset — replicated through the Cartesian topology. Edges
//! are *directed sends* on **cartesian** ranks; a mapping permutation
//! is evaluated against the graph, never baked into it.

use netsim::hier::{HierarchicalNetworkModel, NodeShape};
use netsim::CartTopo;

/// One neighbor direction's share of a rank's exchange schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirLoad {
    /// Per-axis offset to the receiving neighbor (`-1`/`0`/`+1`).
    pub trits: Vec<i8>,
    /// Messages sent to that neighbor per exchange.
    pub msgs: u64,
    /// Payload bytes sent to that neighbor per exchange.
    pub bytes: u64,
}

/// Directed communication-volume graph over cartesian ranks.
#[derive(Clone, Debug)]
pub struct CommGraph {
    ranks: usize,
    /// Per cartesian rank: `(peer cart rank, bytes, msgs)`, self-edges
    /// excluded (loopbacks stay on-node under every mapping, so they
    /// cannot distinguish mappings).
    adj: Vec<Vec<(usize, u64, u64)>>,
}

/// On-node vs off-node split of the graph's traffic under one mapping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficSplit {
    /// Bytes whose endpoints share a node.
    pub on_bytes: u64,
    /// Bytes crossing the fabric.
    pub off_bytes: u64,
    /// Messages whose endpoints share a node.
    pub on_msgs: u64,
    /// Messages crossing the fabric.
    pub off_msgs: u64,
}

impl TrafficSplit {
    /// Fraction of bytes kept on-node (`0.0` when the graph is empty).
    pub fn on_node_fraction(&self) -> f64 {
        let total = self.on_bytes + self.off_bytes;
        if total == 0 {
            return 0.0;
        }
        self.on_bytes as f64 / total as f64
    }
}

impl CommGraph {
    /// Replicate one rank's per-direction loads through `topo`
    /// (unpermuted: the graph lives on cartesian ranks). Directions
    /// that cross a non-periodic boundary or loop back to the sender
    /// contribute nothing.
    pub fn from_dir_loads(topo: &CartTopo, loads: &[DirLoad]) -> CommGraph {
        assert!(!topo.is_permuted(), "comm graph is extracted on cartesian ranks");
        let ranks = topo.size();
        let mut adj = vec![Vec::with_capacity(loads.len()); ranks];
        for (r, edges) in adj.iter_mut().enumerate() {
            for l in loads {
                if l.msgs == 0 && l.bytes == 0 {
                    continue;
                }
                match topo.neighbor(r, &l.trits) {
                    Some(p) if p != r => edges.push((p, l.bytes, l.msgs)),
                    _ => {}
                }
            }
        }
        CommGraph { ranks, adj }
    }

    /// Number of ranks (graph vertices).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Total directed traffic volume between `a` and `b` (both ways).
    pub fn volume_between(&self, a: usize, b: usize) -> u64 {
        let one = |u: usize, v: usize| {
            self.adj[u].iter().filter(|&&(p, _, _)| p == v).map(|&(_, b, _)| b).sum::<u64>()
        };
        one(a, b) + one(b, a)
    }

    /// Per-rank total send volume in bytes.
    pub fn send_volume(&self, rank: usize) -> u64 {
        self.adj[rank].iter().map(|&(_, b, _)| b).sum()
    }

    /// Split the traffic by node locality under `perm`
    /// (`perm[cart] = phys`) and the `node` grouping.
    pub fn split(&self, perm: &[usize], node: &NodeShape) -> TrafficSplit {
        assert_eq!(perm.len(), self.ranks);
        let mut s = TrafficSplit::default();
        for (u, edges) in self.adj.iter().enumerate() {
            for &(v, bytes, msgs) in edges {
                if node.same_node(perm[u], perm[v]) {
                    s.on_bytes += bytes;
                    s.on_msgs += msgs;
                } else {
                    s.off_bytes += bytes;
                    s.off_msgs += msgs;
                }
            }
        }
        s
    }

    /// Modeled bottleneck exchange time under `perm` and the
    /// hierarchical model: each rank posts its sends and waits on both
    /// tiers (mirroring `RankCtx` epoch billing); the slowest rank is
    /// the exchange.
    pub fn modeled_time(&self, perm: &[usize], hier: &HierarchicalNetworkModel) -> f64 {
        assert_eq!(perm.len(), self.ranks);
        let mut worst = 0.0f64;
        for (u, edges) in self.adj.iter().enumerate() {
            let (mut m_on, mut b_on, mut m_off, mut b_off) = (0usize, 0usize, 0usize, 0usize);
            for &(v, bytes, msgs) in edges {
                if hier.node.same_node(perm[u], perm[v]) {
                    m_on += msgs as usize;
                    b_on += bytes as usize;
                } else {
                    m_off += msgs as usize;
                    b_off += bytes as usize;
                }
            }
            let t = hier.intra.exchange_time(m_on, b_on) + hier.inter.exchange_time(m_off, b_off);
            worst = worst.max(t);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_loads() -> Vec<DirLoad> {
        // Face neighbors only, 1 message x 100 bytes each.
        let mut loads = Vec::new();
        for axis in 0..3 {
            for sign in [-1i8, 1] {
                let mut trits = vec![0i8; 3];
                trits[axis] = sign;
                loads.push(DirLoad { trits, msgs: 1, bytes: 100 });
            }
        }
        loads
    }

    #[test]
    fn graph_replicates_loads_over_the_torus() {
        let topo = CartTopo::new(&[2, 2, 2], true);
        let g = CommGraph::from_dir_loads(&topo, &star_loads());
        assert_eq!(g.ranks(), 8);
        // Extent-2 periodic axes: +1 and -1 reach the same peer, so
        // each rank sends 6 messages to 3 distinct peers.
        assert_eq!(g.send_volume(0), 600);
        assert_eq!(g.volume_between(0, 1), 400, "two sends each way along axis 0");
    }

    #[test]
    fn extent_one_axes_drop_self_edges() {
        let topo = CartTopo::new(&[1, 1, 1], true);
        let g = CommGraph::from_dir_loads(&topo, &star_loads());
        assert_eq!(g.send_volume(0), 0, "pure loopback traffic is mapping-blind");
    }

    #[test]
    fn split_counts_locality_under_a_permutation() {
        let topo = CartTopo::new(&[4], true);
        let loads = vec![
            DirLoad { trits: vec![1], msgs: 1, bytes: 10 },
            DirLoad { trits: vec![-1], msgs: 1, bytes: 10 },
        ];
        let g = CommGraph::from_dir_loads(&topo, &loads);
        let node = NodeShape::new(2);
        // Identity: nodes {0,1},{2,3}; ring edges 0-1 and 2-3 on-node,
        // 1-2 and 3-0 off-node; each undirected pair carries 2 sends.
        let id: Vec<usize> = (0..4).collect();
        let s = g.split(&id, &node);
        assert_eq!(s.on_bytes, 40);
        assert_eq!(s.off_bytes, 40);
        assert_eq!(s.on_msgs + s.off_msgs, 8);
        // Swapping ranks 1 and 2 makes the grouping {0,2},{1,3}: every
        // ring edge now crosses nodes.
        let s2 = g.split(&[0, 2, 1, 3], &node);
        assert_eq!(s2.on_bytes, 0);
        assert_eq!(s2.off_bytes, 80);
        assert!(s.on_node_fraction() > s2.on_node_fraction());
    }

    #[test]
    fn modeled_time_rewards_on_node_traffic() {
        let topo = CartTopo::new(&[4], true);
        let loads = vec![
            DirLoad { trits: vec![1], msgs: 2, bytes: 1 << 16 },
            DirLoad { trits: vec![-1], msgs: 2, bytes: 1 << 16 },
        ];
        let g = CommGraph::from_dir_loads(&topo, &loads);
        let hier = HierarchicalNetworkModel::dragonfly(2);
        let id: Vec<usize> = (0..4).collect();
        let good = g.modeled_time(&id, &hier);
        let bad = g.modeled_time(&[0, 2, 1, 3], &hier);
        assert!(good < bad, "keeping ring neighbors on-node must be faster");
        // And both beat nothing: a flat model ignores the mapping.
        let flat = HierarchicalNetworkModel::flat(netsim::NetworkModel::theta_aries());
        assert_eq!(g.modeled_time(&id, &flat), g.modeled_time(&[0, 2, 1, 3], &flat));
    }
}
