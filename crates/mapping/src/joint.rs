//! Joint (layout × mapping) annealing under the hierarchical model.
//!
//! The layout annealer minimizes message *count*; the mappers minimize
//! where messages *go*. Neither alone finds the optimum of the two-tier
//! model: once some neighbors are on-node, a region order that splits a
//! run toward an off-node neighbor while fusing runs toward on-node
//! ones can beat the count-optimal order, and vice versa. This module
//! searches the product space with the same move set and acceptance
//! rule as `layout::optimize`, extended with rank-swap moves, and is
//! *seeded* with the best layout-alone and mapping-alone solutions —
//! the result is therefore never worse than either (the acceptance
//! criterion the bench pins).

use layout::{all_regions, SurfaceLayout};
use netsim::hier::HierarchicalNetworkModel;
use netsim::CartTopo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{CommGraph, DirLoad};
use crate::map::lexicographic;

/// Exchange-schedule loads induced by `layout` on a subdomain of
/// `extents` elements per axis with `ghost`-deep ghost zones: one
/// [`DirLoad`] per neighbor direction, messages = contiguous runs,
/// bytes = sent region volumes.
pub fn schedule_loads(
    layout: &SurfaceLayout,
    extents: &[usize],
    ghost: usize,
    elem_bytes: u64,
) -> Vec<DirLoad> {
    let d = layout.dims();
    assert_eq!(extents.len(), d, "one extent per layout dimension");
    all_regions(d)
        .into_iter()
        .map(|s| {
            let msgs = layout.runs_for_neighbor(&s).len() as u64;
            let bytes: u64 = layout
                .send_set(&s)
                .into_iter()
                .map(|t| {
                    (0..d)
                        .map(|a| if t.axis(a) != 0 { ghost as u64 } else { extents[a] as u64 })
                        .product::<u64>()
                        * elem_bytes
                })
                .sum();
            DirLoad { trits: s.offsets(d), msgs, bytes }
        })
        .collect()
}

/// Search parameters for [`joint_anneal`].
#[derive(Clone, Copy, Debug)]
pub struct JointConfig {
    /// Subdomain elements per axis.
    pub extents: [usize; 3],
    /// Ghost-zone depth.
    pub ghost: usize,
    /// Bytes per element (8 for `f64`).
    pub elem_bytes: u64,
    /// The two-tier model the score is evaluated under.
    pub hier: HierarchicalNetworkModel,
    /// Annealing iterations.
    pub iters: usize,
    /// RNG seed (the search is deterministic per seed).
    pub seed: u64,
}

/// Outcome of a joint search.
#[derive(Clone, Debug)]
pub struct JointResult {
    /// Best region order found.
    pub layout: SurfaceLayout,
    /// Best rank permutation found (`perm[cart] = phys`).
    pub perm: Vec<usize>,
    /// Modeled bottleneck exchange time of (layout, perm).
    pub cost: f64,
    /// Modeled time of the best seed the search started from — the
    /// stronger of (seed layout × seed mapping) and (seed layout ×
    /// lexicographic); `cost <= seed_cost` always holds.
    pub seed_cost: f64,
}

/// Anneal over (region order × rank permutation) jointly. Starts from
/// the better of `(seed_layout, seed_perm)` and `(seed_layout, lex)`
/// and never returns anything worse than its start.
pub fn joint_anneal(
    topo: &CartTopo,
    cfg: &JointConfig,
    seed_layout: &SurfaceLayout,
    seed_perm: &[usize],
) -> JointResult {
    let n = topo.size();
    assert_eq!(seed_perm.len(), n, "seed permutation must cover the topology");
    let cost_of = |layout: &SurfaceLayout, perm: &[usize]| -> f64 {
        let loads = schedule_loads(layout, &cfg.extents, cfg.ghost, cfg.elem_bytes);
        CommGraph::from_dir_loads(topo, &loads).modeled_time(perm, &cfg.hier)
    };

    // Two seeds: mapping-alone and layout-alone (lex mapping). Their
    // minimum is both the starting point and the result floor.
    let lex = lexicographic(n);
    let mut order: Vec<_> = seed_layout.order().to_vec();
    let mut perm = seed_perm.to_vec();
    let seeded = cost_of(seed_layout, seed_perm);
    let lex_cost = cost_of(seed_layout, &lex);
    if lex_cost < seeded {
        perm = lex.clone();
    }
    let seed_cost = seeded.min(lex_cost);

    let mut cur = seed_cost;
    let mut best = seed_cost;
    let mut best_order = order.clone();
    let mut best_perm = perm.clone();

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6A09_E667_F3BC_C908);
    let regions = order.len();
    // Relative temperature schedule: deltas are compared against the
    // seed cost's magnitude so the accept rate is scale-free.
    let scale = seed_cost.max(f64::MIN_POSITIVE);
    let (t0, t1) = (0.08f64, 0.002f64);
    for it in 0..cfg.iters {
        let temp = t0 * (t1 / t0).powf(it as f64 / cfg.iters.max(1) as f64) * scale;
        // Half the moves permute ranks, half permute regions; a move
        // is applied, rescored from scratch (the schedule is tiny),
        // and undone on rejection.
        let layout_move = rng.gen_range(0..2u8) == 0;
        let (i, j) = if layout_move {
            (rng.gen_range(0..regions), rng.gen_range(0..regions))
        } else {
            (rng.gen_range(0..n), rng.gen_range(0..n))
        };
        if i == j {
            continue;
        }
        if layout_move {
            order.swap(i, j);
        } else {
            perm.swap(i, j);
        }
        let trial_layout = SurfaceLayout::new(seed_layout.dims(), order.clone());
        let trial = cost_of(&trial_layout, &perm);
        let delta = trial - cur;
        if delta <= 0.0 || rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0)) {
            cur = trial;
            if cur < best {
                best = cur;
                best_order = order.clone();
                best_perm = perm.clone();
            }
        } else if layout_move {
            order.swap(i, j);
        } else {
            perm.swap(i, j);
        }
    }

    JointResult {
        layout: SurfaceLayout::new(seed_layout.dims(), best_order),
        perm: best_perm,
        cost: best,
        seed_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::recursive_bisection;
    use layout::surface3d;
    use netsim::hier::NodeShape;

    fn cfg(iters: usize) -> JointConfig {
        JointConfig {
            extents: [16; 3],
            ghost: 1,
            elem_bytes: 8,
            hier: HierarchicalNetworkModel::dragonfly(8),
            iters,
            seed: 2021,
        }
    }

    #[test]
    fn schedule_loads_match_layout_counts() {
        let l = surface3d();
        let loads = schedule_loads(&l, &[16; 3], 1, 8);
        assert_eq!(loads.len(), 26);
        let msgs: u64 = loads.iter().map(|l| l.msgs).sum();
        assert_eq!(msgs, l.message_count());
        // Total bytes = every region counted once per neighbor it goes
        // to; a face region (one signed axis) has volume 16*16*1.
        let face = loads
            .iter()
            .find(|l| l.trits.iter().filter(|&&t| t != 0).count() == 1)
            .unwrap();
        assert!(face.bytes >= 16 * 16 * 8, "face load includes its 256-elem region");
    }

    #[test]
    fn joint_never_loses_to_its_seeds() {
        let topo = CartTopo::new(&[4, 4, 4], true);
        let node = NodeShape::new(8);
        let c = cfg(300);
        let seed_perm = recursive_bisection(&topo, &node);
        let r = joint_anneal(&topo, &c, &surface3d(), &seed_perm);
        assert!(r.cost <= r.seed_cost, "joint {} vs seed {}", r.cost, r.seed_cost);
        // Sanity: the result is still a valid bijection and layout.
        let mut sorted = r.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        r.layout.validate();
    }

    #[test]
    fn joint_search_is_deterministic_per_seed() {
        let topo = CartTopo::new(&[2, 2, 2], true);
        let node = NodeShape::new(4);
        let c = cfg(150);
        let seed_perm = recursive_bisection(&topo, &node);
        let a = joint_anneal(&topo, &c, &surface3d(), &seed_perm);
        let b = joint_anneal(&topo, &c, &surface3d(), &seed_perm);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.perm, b.perm);
        assert_eq!(a.layout.order(), b.layout.order());
    }
}
