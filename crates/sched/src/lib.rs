//! # sched — dependency-graph overlap scheduler
//!
//! Executes one stencil timestep as a DAG of tasks instead of two
//! serial phases. The phased drivers run *exchange → compute*, leaving
//! the halo's modeled wire and wait time fully exposed on the critical
//! path. The overlap schedule reorders the step as:
//!
//! 1. **begin** — post halo receives and send the surface runs (the
//!    engine's `begin()` half);
//! 2. **interior** — compute every brick whose stencil reads no ghost
//!    data while the messages are on the wire;
//! 3. **drain** — poll completions (`netsim::RankCtx::progress`); as
//!    each receive lands, the boundary bricks whose ghost dependencies
//!    it satisfied become ready and are computed in batches;
//! 4. **finish** — block on the stragglers (the engine's `finish()`
//!    half, which charges the LogGP wait term), then compute any
//!    still-unready boundary bricks *exposed*.
//!
//! [`DepGraph`] provides the readiness bookkeeping: each boundary
//! brick's dependencies are the distinct pending receives that own its
//! ghost-brick neighbors (sound because every kernel plan asserts
//! `radius ≤ brick extents`, so a brick's stencil reads only its 27
//! adjacency-row neighbors). [`OverlapTimer`] folds the really-measured
//! hidden compute seconds against the modeled wire seconds into the
//! [`telemetry::OverlapStats`] overlap-efficiency metric.
//!
//! Every brick is computed exactly once, from an input grid that is
//! fixed for the whole step (receives scatter into ghost bricks before
//! the bricks that read them are staged), so the overlapped schedule is
//! **bit-identical** to the phased one — the property tests in
//! `tests/proptest_overlap.rs` pin this down across engines, shapes and
//! brick widths.

#![warn(missing_docs)]

use brick::{BrickInfo, NO_BRICK};
use telemetry::OverlapStats;

/// Boundary-brick slot sentinel: the brick is not a boundary brick.
const NO_SLOT: u32 = u32::MAX;

/// Readiness bookkeeping for one rank's boundary bricks against its
/// pending halo receives. Built once per experiment (the schedule is
/// static); [`DepGraph::begin_step`] resets the per-step state without
/// allocating.
pub struct DepGraph {
    /// Boundary bricks with zero ghost dependencies, ready as soon as
    /// the step begins (corner cases: a decomposition whose receives
    /// are all loopback-satisfied has every boundary brick here).
    initially_ready: Vec<u32>,
    /// Boundary bricks depending on at least one receive, per slot.
    gated: Vec<u32>,
    /// Per-slot dependency count (distinct receives owning the brick's
    /// ghost neighbors).
    base_deps: Vec<u32>,
    /// Per-slot outstanding dependency count for the current step.
    remaining: Vec<u32>,
    /// brick id → gated slot (or [`NO_SLOT`]).
    slot_of: Vec<u32>,
    /// Per-receive reverse lists: the gated bricks it helps unlock.
    dependents: Vec<Vec<u32>>,
    /// Gated bricks not yet ready this step.
    pending: usize,
}

impl DepGraph {
    /// Build the graph: `boundary` lists the bricks the scheduler must
    /// gate (compute-set minus interior), and `recv_ghosts[i]` lists
    /// the ghost-brick ids receive `i` scatters into. A boundary brick
    /// depends on every distinct receive owning one of its 27
    /// adjacency-row neighbors.
    pub fn build(info: &BrickInfo<3>, boundary: &[u32], recv_ghosts: &[Vec<u32>]) -> DepGraph {
        let bricks = info.bricks();
        let mut owner = vec![u32::MAX; bricks];
        for (i, ghosts) in recv_ghosts.iter().enumerate() {
            for &g in ghosts {
                debug_assert_eq!(
                    owner[g as usize],
                    u32::MAX,
                    "ghost brick {g} owned by two receives"
                );
                owner[g as usize] = i as u32;
            }
        }
        Self::assemble(
            bricks,
            recv_ghosts.len(),
            boundary.iter().map(|&b| {
                let mut seen: Vec<u32> = Vec::with_capacity(8);
                for &nb in info.adjacency_row(b) {
                    if nb == NO_BRICK {
                        continue;
                    }
                    let o = owner[nb as usize];
                    if o != u32::MAX && !seen.contains(&o) {
                        seen.push(o);
                    }
                }
                (b, seen)
            }),
        )
    }

    /// Build the graph from explicit dependency lists instead of the
    /// static Cartesian adjacency: `deps` maps each gated brick to the
    /// distinct receive indices it waits on (`0..nrecvs`). This is the
    /// dynamic-ownership path — after a migration epoch the dependency
    /// sets follow the rebuilt exchange plan, not a fixed decomposition,
    /// so the scheduler replays the same readiness machinery against
    /// whatever sparse plan discovery produced. Brick ids only key the
    /// internal slot table; they need not be dense, just `< nbricks`.
    pub fn from_deps(
        nbricks: usize,
        nrecvs: usize,
        deps: impl IntoIterator<Item = (u32, Vec<u32>)>,
    ) -> DepGraph {
        Self::assemble(nbricks, nrecvs, deps.into_iter())
    }

    /// Shared assembly: fold `(brick, distinct receive deps)` pairs into
    /// the slot tables ([`DepGraph::build`] derives the pairs from the
    /// static adjacency, [`DepGraph::from_deps`] takes them verbatim).
    fn assemble(
        nbricks: usize,
        nrecvs: usize,
        deps: impl Iterator<Item = (u32, Vec<u32>)>,
    ) -> DepGraph {
        let mut initially_ready = Vec::new();
        let mut gated = Vec::new();
        let mut base_deps = Vec::new();
        let mut slot_of = vec![NO_SLOT; nbricks];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); nrecvs];
        for (b, recvs) in deps {
            assert!((b as usize) < nbricks, "gated brick {b} outside the graph");
            if recvs.is_empty() {
                initially_ready.push(b);
            } else {
                slot_of[b as usize] = gated.len() as u32;
                gated.push(b);
                base_deps.push(recvs.len() as u32);
                for &o in &recvs {
                    debug_assert!((o as usize) < nrecvs, "dep on unknown receive {o}");
                    debug_assert_eq!(
                        recvs.iter().filter(|&&x| x == o).count(),
                        1,
                        "brick {b} lists receive {o} twice"
                    );
                    dependents[o as usize].push(b);
                }
            }
        }
        let remaining = base_deps.clone();
        DepGraph {
            initially_ready,
            gated,
            base_deps,
            remaining,
            slot_of,
            dependents,
            pending: 0,
        }
    }

    /// Start a step: reset every gated brick's outstanding dependency
    /// count and return the bricks that are ready immediately.
    pub fn begin_step(&mut self) -> &[u32] {
        self.remaining.copy_from_slice(&self.base_deps);
        self.pending = self.gated.len();
        &self.initially_ready
    }

    /// Receive `recv` completed: decrement its dependents and push the
    /// bricks that just became ready onto `ready`. Each receive must be
    /// reported at most once per step.
    pub fn complete(&mut self, recv: usize, ready: &mut Vec<u32>) {
        for &b in &self.dependents[recv] {
            let slot = self.slot_of[b as usize] as usize;
            debug_assert!(self.remaining[slot] > 0, "receive {recv} completed twice");
            self.remaining[slot] -= 1;
            if self.remaining[slot] == 0 {
                ready.push(b);
                self.pending -= 1;
            }
        }
    }

    /// Gated bricks still waiting on a receive this step. The drain
    /// loop runs until this hits zero (or falls back to the engine's
    /// blocking `finish()` and computes the remainder exposed).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Bricks ready as soon as the step begins (no ghost dependencies).
    pub fn initially_ready(&self) -> &[u32] {
        &self.initially_ready
    }

    /// Total boundary bricks the graph gates (ready-at-begin included).
    pub fn boundary_count(&self) -> usize {
        self.initially_ready.len() + self.gated.len()
    }

    /// The gated bricks whose dependencies have not all completed this
    /// step, appended to `out` — the exposed remainder the driver
    /// computes after the engine's blocking `finish()`.
    pub fn unready(&self, out: &mut Vec<u32>) {
        for (slot, &b) in self.gated.iter().enumerate() {
            if self.remaining[slot] > 0 {
                out.push(b);
            }
        }
    }
}

/// Accumulates the overlap-efficiency metric across steps: per step,
/// the really-measured compute seconds executed between the engine's
/// `begin()` and `finish()` are folded against the modeled wire
/// seconds (`call + wait`) the same window charged. The hidden credit
/// is capped at the wire time — compute beyond the wire window hides
/// nothing extra.
#[derive(Debug, Default)]
pub struct OverlapTimer {
    stats: OverlapStats,
    hidden_total: f64,
    step_hidden: f64,
    wire_mark: f64,
}

impl OverlapTimer {
    /// Fresh timer (all zeros).
    pub fn new() -> OverlapTimer {
        OverlapTimer::default()
    }

    /// Open a step's overlap window. `wire_now` is the rank's current
    /// cumulative modeled wire seconds (`timers.call + timers.wait`).
    pub fn begin_step(&mut self, wire_now: f64) {
        self.wire_mark = wire_now;
        self.step_hidden = 0.0;
    }

    /// Credit really-measured compute seconds performed inside the
    /// current window.
    pub fn hide(&mut self, secs: f64) {
        self.step_hidden += secs;
    }

    /// Close the step's window at cumulative wire time `wire_now`:
    /// folds `min(hidden, wire)` into the hidden total and the window's
    /// wire seconds into the wire total.
    pub fn end_step(&mut self, wire_now: f64) {
        let wire = (wire_now - self.wire_mark).max(0.0);
        self.stats.hidden_wire += self.step_hidden.min(wire);
        self.stats.total_wire += wire;
        self.hidden_total += self.step_hidden;
        self.step_hidden = 0.0;
    }

    /// Raw hidden compute seconds across all closed steps (the
    /// `calc_hidden` term of the overlapped step-time model — not
    /// capped at the wire time).
    pub fn hidden_total(&self) -> f64 {
        self.hidden_total
    }

    /// Fold partitioned-channel byte totals (early-shipped vs total
    /// payload routed through partitioned sends) into the stats. The
    /// drivers call this once per run with the engine's accumulated
    /// channel counters.
    pub fn record_partition(&mut self, early_bytes: u64, total_bytes: u64) {
        self.stats.early_bytes += early_bytes;
        self.stats.partition_bytes += total_bytes;
    }

    /// The folded overlap statistics.
    pub fn stats(&self) -> OverlapStats {
        self.stats
    }
}

/// Destination-priority ordering for ready boundary bricks: bricks
/// feeding the most-exposed neighbor channel ship first, so the biggest
/// partitioned message starts draining earliest. Engines assign each
/// send-source brick the priority class of its owning channel (0 =
/// most exposed, by payload bytes descending); bricks feeding several
/// channels take the most urgent class, and bricks feeding none sort
/// last.
#[derive(Clone, Debug)]
pub struct SendPriority {
    class_of: Vec<u32>,
}

impl SendPriority {
    /// Priority class of a brick that feeds no send channel: computed
    /// after every sender in a batch.
    pub const LAST: u32 = u32::MAX;

    /// All bricks start at [`SendPriority::LAST`].
    pub fn new(bricks: usize) -> SendPriority {
        SendPriority { class_of: vec![Self::LAST; bricks] }
    }

    /// Assign brick `b` to priority class `class`, keeping the most
    /// urgent (smallest) class when the brick feeds several channels.
    pub fn assign(&mut self, b: u32, class: u32) {
        let slot = &mut self.class_of[b as usize];
        *slot = (*slot).min(class);
    }

    /// The brick's assigned class.
    pub fn class_of(&self, b: u32) -> u32 {
        self.class_of[b as usize]
    }

    /// Order a ready batch most-urgent-first (stable: equal classes
    /// keep their completion order).
    pub fn order(&self, ready: &mut [u32]) {
        ready.sort_by_key(|&b| self.class_of(b));
    }

    /// Split an [`SendPriority::order`]-ed batch into runs of equal
    /// class, so a driver can stage each run as one parallel sub-batch
    /// and mark its partitions ready before starting the next.
    pub fn groups<'a>(&'a self, ordered: &'a [u32]) -> PriorityGroups<'a> {
        PriorityGroups { pri: self, rest: ordered }
    }
}

/// Iterator over equal-priority runs of an ordered batch (see
/// [`SendPriority::groups`]).
pub struct PriorityGroups<'a> {
    pri: &'a SendPriority,
    rest: &'a [u32],
}

impl<'a> Iterator for PriorityGroups<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        let first = *self.rest.first()?;
        let class = self.pri.class_of(first);
        let len = self
            .rest
            .iter()
            .position(|&b| self.pri.class_of(b) != class)
            .unwrap_or(self.rest.len());
        let (run, rest) = self.rest.split_at(len);
        self.rest = rest;
        Some(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brick::{BrickDims, BrickGrid};

    /// 3×3×3 periodic brick grid: every brick has all 27 neighbors.
    fn info3() -> BrickInfo<3> {
        let grid = BrickGrid::<3>::lexicographic([3; 3], true);
        BrickInfo::from_grid(BrickDims::cubic(4), &grid)
    }

    /// Brick id at grid coordinate (x, y, z) of the 3³ lexicographic
    /// grid.
    fn at(x: usize, y: usize, z: usize) -> u32 {
        ((z * 3 + y) * 3 + x) as u32
    }

    #[test]
    fn gates_bricks_on_distinct_owning_receives() {
        let info = info3();
        // Treat the x=0 plane as ghosts: recv 0 owns (0,*,0..=1),
        // recv 1 owns (0,*,2). Boundary bricks: the x=1 plane (each
        // adjacent to the x=0 plane) and the far corner (2,2,2), which
        // in a periodic 3³ grid also touches x=0 via wraparound.
        let recv_ghosts = vec![
            (0..3).flat_map(|y| (0..2).map(move |z| at(0, y, z))).collect::<Vec<u32>>(),
            (0..3).map(|y| at(0, y, 2)).collect::<Vec<u32>>(),
        ];
        let boundary: Vec<u32> = vec![at(1, 1, 0), at(1, 1, 2)];
        let mut g = DepGraph::build(&info, &boundary, &recv_ghosts);
        // (1,1,0) touches x=0 at z ∈ {2(wrap),0,1} → both receives.
        // (1,1,2) touches x=0 at z ∈ {1,2,0(wrap)} → both receives.
        assert_eq!(g.begin_step(), &[] as &[u32]);
        assert_eq!(g.pending(), 2);
        let mut ready = Vec::new();
        g.complete(0, &mut ready);
        assert!(ready.is_empty(), "both bricks still wait on recv 1");
        g.complete(1, &mut ready);
        ready.sort_unstable();
        assert_eq!(ready, vec![at(1, 1, 0), at(1, 1, 2)]);
        assert_eq!(g.pending(), 0);
    }

    #[test]
    fn ungated_boundary_is_initially_ready_and_steps_reset() {
        let info = info3();
        // Ghosts on one face only; a brick with no ghost neighbor is
        // ready at begin.
        let recv_ghosts = vec![vec![at(0, 0, 0)]];
        let boundary = vec![at(1, 0, 0), at(1, 1, 1)];
        // (1,1,1) is adjacent to every brick of the 3³ periodic grid,
        // including the ghost — use a 4³ grid-free shortcut instead:
        // check only that the dependency sets differ.
        let mut g = DepGraph::build(&info, &boundary, &recv_ghosts);
        let first = g.begin_step().to_vec();
        assert_eq!(g.boundary_count(), 2);
        let mut ready = Vec::new();
        g.complete(0, &mut ready);
        let total = first.len() + ready.len();
        assert_eq!(total, 2, "every boundary brick becomes ready exactly once");
        assert_eq!(g.pending(), 0);
        // Second step: counts reset, the same receives unlock again.
        let first2 = g.begin_step().to_vec();
        assert_eq!(first2, first);
        let mut ready2 = Vec::new();
        g.complete(0, &mut ready2);
        assert_eq!(ready2, ready);
    }

    #[test]
    fn unready_lists_exposed_remainder() {
        let info = info3();
        let recv_ghosts = vec![vec![at(0, 1, 1)], vec![at(2, 1, 1)]];
        let boundary = vec![at(1, 1, 1)];
        let mut g = DepGraph::build(&info, &boundary, &recv_ghosts);
        g.begin_step();
        let mut exposed = Vec::new();
        g.unready(&mut exposed);
        assert_eq!(exposed, vec![at(1, 1, 1)]);
        let mut ready = Vec::new();
        g.complete(0, &mut ready);
        g.complete(1, &mut ready);
        assert_eq!(ready, vec![at(1, 1, 1)]);
        exposed.clear();
        g.unready(&mut exposed);
        assert!(exposed.is_empty());
    }

    #[test]
    fn from_deps_matches_build_semantics() {
        // Explicit dependency lists, as a post-migration rebuild would
        // produce them: brick 7 waits on receives {0, 2}, brick 3 on
        // {2}, brick 9 on nothing (ready at begin).
        let mut g = DepGraph::from_deps(
            12,
            3,
            vec![(7u32, vec![0u32, 2]), (3, vec![2]), (9, vec![])],
        );
        assert_eq!(g.begin_step(), &[9][..]);
        assert_eq!(g.pending(), 2);
        assert_eq!(g.boundary_count(), 3);
        let mut ready = Vec::new();
        g.complete(2, &mut ready);
        assert_eq!(ready, vec![3], "brick 7 still waits on receive 0");
        g.complete(0, &mut ready);
        assert_eq!(ready, vec![3, 7]);
        assert_eq!(g.pending(), 0);
        // Replay across steps works exactly like the static graph.
        g.begin_step();
        let mut exposed = Vec::new();
        g.unready(&mut exposed);
        exposed.sort_unstable();
        assert_eq!(exposed, vec![3, 7]);
    }

    #[test]
    #[should_panic(expected = "outside the graph")]
    fn from_deps_rejects_out_of_range_bricks() {
        DepGraph::from_deps(4, 1, vec![(4u32, vec![0u32])]);
    }

    #[test]
    fn overlap_timer_caps_hidden_at_wire_per_step() {
        let mut t = OverlapTimer::new();
        // Step 1: 2s hidden against 1s of wire — only 1s counts.
        t.begin_step(10.0);
        t.hide(2.0);
        t.end_step(11.0);
        // Step 2: 0.25s hidden against 1s of wire.
        t.begin_step(11.0);
        t.hide(0.25);
        t.end_step(12.0);
        let s = t.stats();
        assert!((s.hidden_wire - 1.25).abs() < 1e-12);
        assert!((s.total_wire - 2.0).abs() < 1e-12);
        assert!((s.efficiency() - 0.625).abs() < 1e-12);
        assert!((t.hidden_total() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn overlap_timer_folds_partition_bytes() {
        let mut t = OverlapTimer::new();
        t.record_partition(300, 400);
        t.record_partition(100, 400);
        let s = t.stats();
        assert_eq!(s.early_bytes, 300 + 100);
        assert_eq!(s.partition_bytes, 800);
        assert!((s.early_shipped_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn send_priority_orders_and_groups_most_urgent_first() {
        let mut p = SendPriority::new(8);
        p.assign(3, 1);
        p.assign(5, 0);
        p.assign(6, 0);
        p.assign(3, 2); // keeps the more urgent class 1
        assert_eq!(p.class_of(3), 1);
        assert_eq!(p.class_of(0), SendPriority::LAST, "non-senders sort last");
        let mut ready = vec![0, 3, 5, 1, 6];
        p.order(&mut ready);
        assert_eq!(ready, vec![5, 6, 3, 0, 1], "stable within a class");
        let groups: Vec<&[u32]> = p.groups(&ready).collect();
        assert_eq!(groups, vec![&[5, 6][..], &[3][..], &[0, 1][..]]);
        assert!(p.groups(&[]).next().is_none());
    }
}
