//! Cartesian rank topology (MPI_Cart_create equivalent).

/// A periodic or bounded Cartesian process grid.
#[derive(Clone, Debug)]
pub struct CartTopo {
    dims: Vec<usize>,
    periodic: bool,
}

impl CartTopo {
    /// Grid of `dims` ranks per axis.
    pub fn new(dims: &[usize], periodic: bool) -> CartTopo {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0));
        CartTopo { dims: dims.to_vec(), periodic }
    }

    /// Factor `n` ranks into a `d`-dimensional grid as evenly as possible
    /// (MPI_Dims_create equivalent; larger factors on later axes so the
    /// unit-stride axis gets the smallest cut).
    pub fn balanced(n: usize, d: usize, periodic: bool) -> CartTopo {
        assert!(n > 0 && d > 0);
        let mut dims = vec![1usize; d];
        let mut rem = n;
        // Repeatedly strip the smallest prime factor onto the currently
        // smallest grid axis.
        while rem > 1 {
            let f = smallest_prime_factor(rem);
            let i = (0..d).min_by_key(|&i| dims[i]).unwrap();
            dims[i] *= f;
            rem /= f;
        }
        dims.sort_unstable();
        CartTopo { dims, periodic }
    }

    /// Ranks per axis.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the grid wraps.
    pub fn periodic(&self) -> bool {
        self.periodic
    }

    /// Coordinates of a rank (axis 0 fastest).
    pub fn coords(&self, mut rank: usize) -> Vec<usize> {
        assert!(rank < self.size());
        let mut c = Vec::with_capacity(self.dims.len());
        for &d in &self.dims {
            c.push(rank % d);
            rank /= d;
        }
        c
    }

    /// Rank at coordinates.
    pub fn rank(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len());
        let mut r = 0usize;
        for a in (0..self.dims.len()).rev() {
            assert!(coords[a] < self.dims[a]);
            r = r * self.dims[a] + coords[a];
        }
        r
    }

    /// Neighbor of `rank` offset by per-axis trits; `None` across a
    /// non-periodic boundary. On a periodic axis of extent 1 the neighbor
    /// is the rank itself (self-loopback), exactly like MPI_Cart_shift.
    pub fn neighbor(&self, rank: usize, trits: &[i8]) -> Option<usize> {
        assert_eq!(trits.len(), self.dims.len());
        let mut c = self.coords(rank);
        for a in 0..c.len() {
            let d = self.dims[a] as isize;
            let mut p = c[a] as isize + trits[a] as isize;
            if p < 0 || p >= d {
                if !self.periodic {
                    return None;
                }
                p = (p % d + d) % d;
            }
            c[a] = p as usize;
        }
        Some(self.rank(&c))
    }
}

fn smallest_prime_factor(n: usize) -> usize {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut f = 3;
    while f * f <= n {
        if n.is_multiple_of(f) {
            return f;
        }
        f += 2;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = CartTopo::new(&[2, 3, 4], true);
        assert_eq!(t.size(), 24);
        for r in 0..24 {
            assert_eq!(t.rank(&t.coords(r)), r);
        }
    }

    #[test]
    fn periodic_wrap() {
        let t = CartTopo::new(&[2, 2, 2], true);
        let r = t.rank(&[0, 0, 0]);
        assert_eq!(t.neighbor(r, &[-1, 0, 0]), Some(t.rank(&[1, 0, 0])));
        assert_eq!(t.neighbor(r, &[-1, -1, -1]), Some(t.rank(&[1, 1, 1])));
    }

    #[test]
    fn nonperiodic_edges() {
        let t = CartTopo::new(&[2, 2], false);
        assert_eq!(t.neighbor(0, &[-1, 0]), None);
        assert_eq!(t.neighbor(0, &[1, 0]), Some(1));
    }

    #[test]
    fn extent_one_axis_loops_to_self() {
        let t = CartTopo::new(&[1, 1, 1], true);
        assert_eq!(t.neighbor(0, &[1, -1, 1]), Some(0));
    }

    #[test]
    fn balanced_factorization() {
        assert_eq!(CartTopo::balanced(8, 3, true).dims(), &[2, 2, 2]);
        assert_eq!(CartTopo::balanced(16, 3, true).dims(), &[2, 2, 4]);
        assert_eq!(CartTopo::balanced(64, 3, true).dims(), &[4, 4, 4]);
        assert_eq!(CartTopo::balanced(1024, 3, true).dims(), &[8, 8, 16]);
        assert_eq!(CartTopo::balanced(6, 3, true).dims(), &[1, 2, 3]);
        assert_eq!(CartTopo::balanced(1, 3, true).size(), 1);
    }
}
