//! Cartesian rank topology (MPI_Cart_create equivalent), with an
//! optional rank permutation (MPI_Cart_create's `reorder`, made
//! explicit).
//!
//! A mapping policy (see the `mapping` crate) produces a bijection
//! `cartesian position → physical rank` chosen so that neighboring
//! positions land on the same node of a hierarchical fabric. The
//! permutation is applied *here*, at the topology, because every
//! exchange engine resolves its peers exactly once through
//! [`CartTopo::neighbor`] when a session is bound — remapping the
//! topology therefore remaps phased, overlap and partitioned engines
//! alike without touching any of them. All public methods speak
//! *physical* ranks (the ids rank bodies actually run under); the
//! identity permutation is represented as `None` and costs nothing.

use std::fmt;

/// Structured error for user-reachable topology construction and
/// queries (the panic-free twins of the asserting methods).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopoError {
    /// A grid needs at least one axis.
    EmptyDims,
    /// Axis `axis` has extent zero.
    ZeroExtent {
        /// Offending axis index.
        axis: usize,
    },
    /// A rank id at or beyond the grid size.
    RankOutOfRange {
        /// Offending rank.
        rank: usize,
        /// Grid size.
        size: usize,
    },
    /// A coordinate or offset vector of the wrong arity.
    DimsMismatch {
        /// Vector length supplied.
        got: usize,
        /// Grid dimensionality.
        want: usize,
    },
    /// A coordinate outside its axis extent.
    CoordOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Supplied coordinate.
        coord: usize,
        /// Axis extent.
        extent: usize,
    },
    /// A rank permutation whose length differs from the grid size.
    PermutationLength {
        /// Permutation length supplied.
        got: usize,
        /// Grid size.
        want: usize,
    },
    /// A rank permutation that is not a bijection on `0..size`.
    PermutationNotBijective {
        /// A value that is out of range or repeated.
        value: usize,
    },
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::EmptyDims => write!(f, "topology needs at least one axis"),
            TopoError::ZeroExtent { axis } => {
                write!(f, "topology axis {axis} has extent 0")
            }
            TopoError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} outside topology of {size} ranks")
            }
            TopoError::DimsMismatch { got, want } => {
                write!(f, "expected {want} per-axis entries, got {got}")
            }
            TopoError::CoordOutOfRange { axis, coord, extent } => {
                write!(f, "coordinate {coord} outside axis {axis} of extent {extent}")
            }
            TopoError::PermutationLength { got, want } => {
                write!(f, "rank permutation has {got} entries for {want} ranks")
            }
            TopoError::PermutationNotBijective { value } => {
                write!(f, "rank permutation is not a bijection (at value {value})")
            }
        }
    }
}

impl std::error::Error for TopoError {}

/// The cart↔phys bijection of a remapped topology.
#[derive(Clone, Debug)]
struct Perm {
    /// `to_phys[cartesian rank] = physical rank`.
    to_phys: Vec<usize>,
    /// Inverse: `to_cart[physical rank] = cartesian rank`.
    to_cart: Vec<usize>,
}

/// A periodic or bounded Cartesian process grid.
#[derive(Clone, Debug)]
pub struct CartTopo {
    dims: Vec<usize>,
    periodic: bool,
    perm: Option<Perm>,
}

impl CartTopo {
    /// Grid of `dims` ranks per axis. Panics on an empty or zero-extent
    /// grid; see [`CartTopo::try_new`] for the structured error.
    pub fn new(dims: &[usize], periodic: bool) -> CartTopo {
        CartTopo::try_new(dims, periodic).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CartTopo::new`].
    pub fn try_new(dims: &[usize], periodic: bool) -> Result<CartTopo, TopoError> {
        if dims.is_empty() {
            return Err(TopoError::EmptyDims);
        }
        if let Some(axis) = dims.iter().position(|&d| d == 0) {
            return Err(TopoError::ZeroExtent { axis });
        }
        Ok(CartTopo { dims: dims.to_vec(), periodic, perm: None })
    }

    /// Factor `n` ranks into a `d`-dimensional grid as evenly as possible
    /// (MPI_Dims_create equivalent; larger factors on later axes so the
    /// unit-stride axis gets the smallest cut).
    pub fn balanced(n: usize, d: usize, periodic: bool) -> CartTopo {
        assert!(n > 0 && d > 0);
        let mut dims = vec![1usize; d];
        let mut rem = n;
        // Repeatedly strip the smallest prime factor onto the currently
        // smallest grid axis.
        while rem > 1 {
            let f = smallest_prime_factor(rem);
            let i = (0..d).min_by_key(|&i| dims[i]).unwrap();
            dims[i] *= f;
            rem /= f;
        }
        dims.sort_unstable();
        CartTopo { dims, periodic, perm: None }
    }

    /// This grid with ranks remapped by `perm`, where
    /// `perm[cartesian rank] = physical rank`. The identity permutation
    /// is normalized back to the unpermuted representation, so a
    /// lexicographic mapping is structurally the original topology.
    pub fn with_permutation(&self, perm: &[usize]) -> Result<CartTopo, TopoError> {
        let n = self.size();
        if perm.len() != n {
            return Err(TopoError::PermutationLength { got: perm.len(), want: n });
        }
        let mut to_cart = vec![usize::MAX; n];
        for (cart, &phys) in perm.iter().enumerate() {
            if phys >= n || to_cart[phys] != usize::MAX {
                return Err(TopoError::PermutationNotBijective { value: phys });
            }
            to_cart[phys] = cart;
        }
        let perm = (!perm.iter().enumerate().all(|(i, &p)| i == p))
            .then(|| Perm { to_phys: perm.to_vec(), to_cart });
        Ok(CartTopo { dims: self.dims.clone(), periodic: self.periodic, perm })
    }

    /// The active cart→phys permutation, if any (`None` = identity).
    pub fn permutation(&self) -> Option<&[usize]> {
        self.perm.as_ref().map(|p| p.to_phys.as_slice())
    }

    /// Whether a non-identity rank permutation is active.
    pub fn is_permuted(&self) -> bool {
        self.perm.is_some()
    }

    /// Ranks per axis.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total ranks.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the grid wraps.
    pub fn periodic(&self) -> bool {
        self.periodic
    }

    /// Cartesian rank occupied by physical rank `phys`.
    #[inline]
    fn cart_of(&self, phys: usize) -> usize {
        match &self.perm {
            Some(p) => p.to_cart[phys],
            None => phys,
        }
    }

    /// Physical rank occupying cartesian rank `cart`.
    #[inline]
    fn phys_of(&self, cart: usize) -> usize {
        match &self.perm {
            Some(p) => p.to_phys[cart],
            None => cart,
        }
    }

    /// Coordinates of a (physical) rank (axis 0 fastest). Panics on an
    /// out-of-range rank; see [`CartTopo::try_coords`].
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        self.try_coords(rank).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CartTopo::coords`].
    pub fn try_coords(&self, rank: usize) -> Result<Vec<usize>, TopoError> {
        if rank >= self.size() {
            return Err(TopoError::RankOutOfRange { rank, size: self.size() });
        }
        let mut cart = self.cart_of(rank);
        let mut c = Vec::with_capacity(self.dims.len());
        for &d in &self.dims {
            c.push(cart % d);
            cart /= d;
        }
        Ok(c)
    }

    /// (Physical) rank at coordinates. Panics on bad coordinates; see
    /// [`CartTopo::try_rank`].
    pub fn rank(&self, coords: &[usize]) -> usize {
        self.try_rank(coords).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CartTopo::rank`].
    pub fn try_rank(&self, coords: &[usize]) -> Result<usize, TopoError> {
        if coords.len() != self.dims.len() {
            return Err(TopoError::DimsMismatch { got: coords.len(), want: self.dims.len() });
        }
        let mut r = 0usize;
        for a in (0..self.dims.len()).rev() {
            if coords[a] >= self.dims[a] {
                return Err(TopoError::CoordOutOfRange {
                    axis: a,
                    coord: coords[a],
                    extent: self.dims[a],
                });
            }
            r = r * self.dims[a] + coords[a];
        }
        Ok(self.phys_of(r))
    }

    /// Neighbor of (physical) `rank` offset by per-axis trits; `None`
    /// across a non-periodic boundary. On a periodic axis of extent 1
    /// the neighbor is the rank itself (self-loopback), exactly like
    /// MPI_Cart_shift. Panics on a wrong-arity offset vector; see
    /// [`CartTopo::try_neighbor`].
    pub fn neighbor(&self, rank: usize, trits: &[i8]) -> Option<usize> {
        self.try_neighbor(rank, trits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CartTopo::neighbor`]: `Ok(None)` is a non-periodic
    /// boundary, `Err` a malformed query.
    pub fn try_neighbor(&self, rank: usize, trits: &[i8]) -> Result<Option<usize>, TopoError> {
        if trits.len() != self.dims.len() {
            return Err(TopoError::DimsMismatch { got: trits.len(), want: self.dims.len() });
        }
        let mut c = self.try_coords(rank)?;
        for a in 0..c.len() {
            let d = self.dims[a] as isize;
            let mut p = c[a] as isize + trits[a] as isize;
            if p < 0 || p >= d {
                if !self.periodic {
                    return Ok(None);
                }
                p = (p % d + d) % d;
            }
            c[a] = p as usize;
        }
        Ok(Some(self.rank(&c)))
    }
}

fn smallest_prime_factor(n: usize) -> usize {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut f = 3;
    while f * f <= n {
        if n.is_multiple_of(f) {
            return f;
        }
        f += 2;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = CartTopo::new(&[2, 3, 4], true);
        assert_eq!(t.size(), 24);
        for r in 0..24 {
            assert_eq!(t.rank(&t.coords(r)), r);
        }
    }

    #[test]
    fn periodic_wrap() {
        let t = CartTopo::new(&[2, 2, 2], true);
        let r = t.rank(&[0, 0, 0]);
        assert_eq!(t.neighbor(r, &[-1, 0, 0]), Some(t.rank(&[1, 0, 0])));
        assert_eq!(t.neighbor(r, &[-1, -1, -1]), Some(t.rank(&[1, 1, 1])));
    }

    #[test]
    fn nonperiodic_edges() {
        let t = CartTopo::new(&[2, 2], false);
        assert_eq!(t.neighbor(0, &[-1, 0]), None);
        assert_eq!(t.neighbor(0, &[1, 0]), Some(1));
    }

    #[test]
    fn extent_one_axis_loops_to_self() {
        let t = CartTopo::new(&[1, 1, 1], true);
        assert_eq!(t.neighbor(0, &[1, -1, 1]), Some(0));
    }

    #[test]
    fn balanced_factorization() {
        assert_eq!(CartTopo::balanced(8, 3, true).dims(), &[2, 2, 2]);
        assert_eq!(CartTopo::balanced(16, 3, true).dims(), &[2, 2, 4]);
        assert_eq!(CartTopo::balanced(64, 3, true).dims(), &[4, 4, 4]);
        assert_eq!(CartTopo::balanced(1024, 3, true).dims(), &[8, 8, 16]);
        assert_eq!(CartTopo::balanced(6, 3, true).dims(), &[1, 2, 3]);
        assert_eq!(CartTopo::balanced(1, 3, true).size(), 1);
    }

    #[test]
    fn construction_errors_are_structured() {
        assert!(matches!(CartTopo::try_new(&[], true), Err(TopoError::EmptyDims)));
        assert!(matches!(CartTopo::try_new(&[2, 0], true), Err(TopoError::ZeroExtent { axis: 1 })));
        let t = CartTopo::new(&[2, 2], true);
        assert!(matches!(t.try_coords(4), Err(TopoError::RankOutOfRange { rank: 4, size: 4 })));
        assert!(matches!(t.try_rank(&[0]), Err(TopoError::DimsMismatch { got: 1, want: 2 })));
        assert!(matches!(
            t.try_rank(&[0, 5]),
            Err(TopoError::CoordOutOfRange { axis: 1, coord: 5, extent: 2 })
        ));
        assert!(matches!(t.try_neighbor(0, &[1]), Err(TopoError::DimsMismatch { .. })));
        assert_eq!(t.try_neighbor(0, &[1, 0]), Ok(Some(1)));
    }

    #[test]
    fn permutation_relabels_every_query() {
        let t = CartTopo::new(&[2, 2], true);
        // Reverse the ranks: cart r lives on phys 3-r.
        let p = t.with_permutation(&[3, 2, 1, 0]).unwrap();
        assert!(p.is_permuted());
        assert_eq!(p.permutation(), Some(&[3usize, 2, 1, 0][..]));
        for cart in 0..4 {
            let phys = 3 - cart;
            assert_eq!(p.coords(phys), t.coords(cart));
            assert_eq!(p.rank(&t.coords(cart)), phys);
        }
        // Neighbor structure is the relabeled original graph.
        for cart in 0..4 {
            for trits in [[1i8, 0], [0, 1], [1, 1], [-1, 0]] {
                let n = t.neighbor(cart, &trits).unwrap();
                assert_eq!(p.neighbor(3 - cart, &trits), Some(3 - n));
            }
        }
    }

    #[test]
    fn identity_permutation_normalizes_away() {
        let t = CartTopo::new(&[2, 3], false);
        let p = t.with_permutation(&[0, 1, 2, 3, 4, 5]).unwrap();
        assert!(!p.is_permuted());
        assert_eq!(p.permutation(), None);
    }

    #[test]
    fn bad_permutations_are_rejected() {
        let t = CartTopo::new(&[2, 2], true);
        assert!(matches!(
            t.with_permutation(&[0, 1, 2]),
            Err(TopoError::PermutationLength { got: 3, want: 4 })
        ));
        assert!(matches!(
            t.with_permutation(&[0, 1, 2, 2]),
            Err(TopoError::PermutationNotBijective { value: 2 })
        ));
        assert!(matches!(
            t.with_permutation(&[0, 1, 2, 7]),
            Err(TopoError::PermutationNotBijective { value: 7 })
        ));
    }
}
