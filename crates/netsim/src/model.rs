//! LogGP-style wire cost model.
//!
//! The reproduction's contract (see DESIGN.md): everything that happens
//! *on the node* — packing, unpacking, view construction, computation —
//! is really executed and really timed. Only the network fabric, which we
//! do not have, is replaced by this model. It charges:
//!
//! * `o`   seconds of CPU per posted send/recv (`call` time: descriptor
//!   setup, matching, rendezvous handshakes),
//! * `α`   seconds of one-way latency per exchange,
//! * `g`   seconds of inter-message gap (injection-rate limit),
//! * `1/β` seconds per byte of injection bandwidth.
//!
//! A rank that posts `m` messages totalling `B` bytes and then waits sees
//! `call = o·m` and `wait = α + (m−1)·g + B/β` — the standard LogGP
//! completion time for back-to-back messages. This reproduces the paper's
//! observed regimes: small subdomains are startup-bound (flat in Figure
//! 9), large ones bandwidth-bound, and extra messages (Layout's 42 vs 26)
//! or extra bytes (MemMap's padding) cost exactly what Table 2/Figure 18
//! show.

/// Fabric model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Human-readable fabric name.
    pub name: &'static str,
    /// Per-message CPU posting overhead `o` (seconds).
    pub overhead: f64,
    /// One-way latency `α` (seconds).
    pub latency: f64,
    /// Inter-message injection gap `g` (seconds).
    pub gap: f64,
    /// Injection bandwidth `β` (bytes/second) per rank.
    pub bandwidth: f64,
}

impl NetworkModel {
    /// Cray Aries (Theta): ~1.3 µs latency, ~8 GB/s effective per-rank
    /// injection, sub-µs per-message costs.
    pub fn theta_aries() -> NetworkModel {
        NetworkModel {
            name: "aries",
            overhead: 0.45e-6,
            latency: 1.3e-6,
            gap: 0.40e-6,
            bandwidth: 8.0e9,
        }
    }

    /// Mellanox EDR 100 Gb InfiniBand (Summit): 12.5 GB/s line rate.
    pub fn summit_edr() -> NetworkModel {
        NetworkModel {
            name: "edr",
            overhead: 0.55e-6,
            latency: 1.1e-6,
            gap: 0.50e-6,
            bandwidth: 12.5e9,
        }
    }

    /// An idealized instantaneous fabric (for functional tests).
    pub fn instant() -> NetworkModel {
        NetworkModel { name: "instant", overhead: 0.0, latency: 0.0, gap: 0.0, bandwidth: f64::INFINITY }
    }

    /// This model slowed down by `factor` (≥ 1): latency, gap and
    /// per-message overhead stretch, bandwidth shrinks. Fault
    /// injection's per-rank jitter hands every rank a slowed copy, so a
    /// straggler NIC is a property of the rank, not of individual
    /// messages.
    pub fn slowed(&self, factor: f64) -> NetworkModel {
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        NetworkModel {
            name: self.name,
            overhead: self.overhead * factor,
            latency: self.latency * factor,
            gap: self.gap * factor,
            bandwidth: self.bandwidth / factor,
        }
    }

    /// `call`-side CPU time for posting `m` messages.
    #[inline]
    pub fn call_time(&self, messages: usize) -> f64 {
        self.overhead * messages as f64
    }

    /// `wait`-side completion time for `m` messages totalling `bytes`.
    #[inline]
    pub fn wait_time(&self, messages: usize, bytes: usize) -> f64 {
        if messages == 0 {
            return 0.0;
        }
        self.latency + (messages - 1) as f64 * self.gap + bytes as f64 / self.bandwidth
    }

    /// Total wire time for one exchange (`call + wait`); the paper's
    /// `Network` floor uses this with the minimal message count and no
    /// padding.
    #[inline]
    pub fn exchange_time(&self, messages: usize, bytes: usize) -> f64 {
        self.call_time(messages) + self.wait_time(messages, bytes)
    }

    /// Effective achieved bandwidth for an exchange (Table 2's metric):
    /// payload bytes divided by total exchange time.
    pub fn achieved_bandwidth(&self, messages: usize, wire_bytes: usize, payload_bytes: usize) -> f64 {
        payload_bytes as f64 / self.exchange_time(messages, wire_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_messages() {
        let m = NetworkModel::theta_aries();
        // 26 tiny messages vs 26 large ones: the small exchange is
        // startup-bound, i.e. nearly independent of size.
        let t_small = m.exchange_time(26, 26 * 512);
        let t_smaller = m.exchange_time(26, 26 * 64);
        assert!((t_small - t_smaller) / t_small < 0.08);
        // Large messages are bandwidth-bound.
        let t_large = m.exchange_time(26, 200 << 20);
        assert!(t_large > 10.0 * t_small);
    }

    #[test]
    fn more_messages_cost_more() {
        let m = NetworkModel::theta_aries();
        let bytes = 1 << 20;
        assert!(m.exchange_time(98, bytes) > m.exchange_time(42, bytes));
        assert!(m.exchange_time(42, bytes) > m.exchange_time(26, bytes));
    }

    #[test]
    fn padding_costs_bandwidth() {
        let m = NetworkModel::summit_edr();
        let t = m.exchange_time(26, 100 << 20);
        let t_padded = m.exchange_time(26, 190 << 20);
        assert!(t_padded > 1.5 * t);
    }

    #[test]
    fn zero_messages_free() {
        let m = NetworkModel::theta_aries();
        assert_eq!(m.exchange_time(0, 0), 0.0);
    }

    #[test]
    fn achieved_bandwidth_below_line_rate() {
        let m = NetworkModel::summit_edr();
        let bw = m.achieved_bandwidth(26, 64 << 20, 64 << 20);
        assert!(bw < m.bandwidth);
        assert!(bw > 0.5 * m.bandwidth);
        // Padding lowers the *payload* bandwidth.
        let bw_padded = m.achieved_bandwidth(26, 128 << 20, 64 << 20);
        assert!(bw_padded < 0.75 * bw);
    }

    #[test]
    fn instant_fabric_is_free() {
        let m = NetworkModel::instant();
        assert_eq!(m.exchange_time(1000, 1 << 30), 0.0);
    }

    #[test]
    fn slowed_scales_every_term() {
        let m = NetworkModel::theta_aries();
        let s = m.slowed(1.5);
        assert_eq!(s.overhead, m.overhead * 1.5);
        assert_eq!(s.latency, m.latency * 1.5);
        assert_eq!(s.gap, m.gap * 1.5);
        assert_eq!(s.bandwidth, m.bandwidth / 1.5);
        assert!(s.exchange_time(26, 1 << 20) > m.exchange_time(26, 1 << 20));
        // Factor 1 is the identity; instant stays free.
        assert_eq!(m.slowed(1.0), m);
        assert_eq!(NetworkModel::instant().slowed(2.0).exchange_time(10, 100), 0.0);
    }
}
