//! Stackful rank tasks: the coroutine substrate of the event-driven
//! backend (see [`crate::event`]).
//!
//! Each simulated rank owns a private call stack (mmap'd, with a
//! `PROT_NONE` guard page below it) and a saved register context. A
//! worker enters the rank with [`Task::resume`]; the rank leaves by
//! suspending with a [`Directive`] telling the scheduler why it
//! stopped (cooperative yield, parked on an event, or finished).
//! The switch itself saves exactly what the System V AMD64 ABI makes
//! the callee's responsibility — callee-saved GPRs, the stack pointer,
//! the resume address, and the FP control words — so it costs tens of
//! nanoseconds instead of a `sigprocmask` round trip, and needs no
//! glibc `ucontext` layout knowledge.
//!
//! Panics never unwind across a context switch: the task entry wraps
//! the body in `catch_unwind` and hands the payload back to the
//! scheduler, which reports it as a structured
//! [`crate::NetsimError::RankPanicked`].
//!
//! Only compiled on `x86_64-linux`; [`crate::cluster::Backend::Event`]
//! falls back to the thread backend elsewhere.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};

/// Default per-task stack: 1 MiB of *virtual* reservation. Pages are
/// committed lazily (`MAP_NORESERVE` + demand paging), so 10k ranks
/// reserve ~10 GiB of address space but only touch the few pages each
/// rank body really uses.
pub const DEFAULT_STACK_BYTES: usize = 1 << 20;

const PAGE: usize = 4096;

// Minimal FFI for stack mapping; declared locally so the event backend
// adds no crate dependency (these symbols are always present in the
// platform libc netsim already links via std).
mod sys {
    use std::ffi::c_void;
    pub const PROT_NONE: i32 = 0;
    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const MAP_PRIVATE: i32 = 0x02;
    pub const MAP_ANONYMOUS: i32 = 0x20;
    pub const MAP_NORESERVE: i32 = 0x4000;
    pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;
    pub const MADV_HUGEPAGE: i32 = 14;
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }
}

/// Saved execution state: callee-saved GPRs, stack pointer, resume
/// address, and the SSE/x87 control words. Layout is fixed — the
/// assembly below addresses fields by byte offset.
#[repr(C)]
struct Context {
    rbx: u64,   // 0x00
    rbp: u64,   // 0x08
    r12: u64,   // 0x10 — task pointer at first entry
    r13: u64,   // 0x18 — entry trampoline target at first entry
    r14: u64,   // 0x20
    r15: u64,   // 0x28
    rsp: u64,   // 0x30
    rip: u64,   // 0x38
    mxcsr: u32, // 0x40
    fcw: u32,   // 0x44
}

impl Context {
    fn zeroed() -> Context {
        // SysV default FP environment: round-to-nearest, all exceptions
        // masked — what Rust code expects.
        Context {
            rbx: 0,
            rbp: 0,
            r12: 0,
            r13: 0,
            r14: 0,
            r15: 0,
            rsp: 0,
            rip: 0,
            mxcsr: 0x1F80,
            fcw: 0x037F,
        }
    }
}

core::arch::global_asm!(
    ".text",
    ".balign 16",
    // netsim_ctx_switch(save: *mut Context /*rdi*/, restore: *const Context /*rsi*/)
    //
    // Saves the caller's callee-saved state into `save` with a resume
    // point at our own return address, then installs `restore` and
    // jumps to its resume point. To the compiler this is an ordinary
    // extern "C" call; caller-saved registers need no help.
    ".globl netsim_ctx_switch",
    ".type netsim_ctx_switch,@function",
    "netsim_ctx_switch:",
    "mov [rdi+0x00], rbx",
    "mov [rdi+0x08], rbp",
    "mov [rdi+0x10], r12",
    "mov [rdi+0x18], r13",
    "mov [rdi+0x20], r14",
    "mov [rdi+0x28], r15",
    "lea rax, [rsp+8]",
    "mov [rdi+0x30], rax",
    "mov rax, [rsp]",
    "mov [rdi+0x38], rax",
    "stmxcsr [rdi+0x40]",
    "fnstcw  [rdi+0x44]",
    "mov rbx, [rsi+0x00]",
    "mov rbp, [rsi+0x08]",
    "mov r12, [rsi+0x10]",
    "mov r13, [rsi+0x18]",
    "mov r14, [rsi+0x20]",
    "mov r15, [rsi+0x28]",
    "mov rsp, [rsi+0x30]",
    "ldmxcsr [rsi+0x40]",
    "fldcw   [rsi+0x44]",
    "jmp qword ptr [rsi+0x38]",
    ".size netsim_ctx_switch, . - netsim_ctx_switch",
    // First-entry trampoline. A fresh task context carries the task
    // pointer in r12 and the entry function in r13; rsp is 16-aligned,
    // so after `call` pushes the (never-used) return address the entry
    // sees the standard ABI alignment. The entry never returns.
    ".globl netsim_task_start",
    ".type netsim_task_start,@function",
    "netsim_task_start:",
    "mov rdi, r12",
    "call r13",
    "ud2",
    ".size netsim_task_start, . - netsim_task_start",
);

extern "C" {
    fn netsim_ctx_switch(save: *mut Context, restore: *const Context);
    fn netsim_task_start();
}

/// Why a resumed task gave the CPU back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Directive {
    /// Cooperative yield (spin-polling paths): requeue at the back.
    Yield,
    /// Parked on an event (mailbox arrival, barrier, timer); the
    /// scheduler re-queues it when the event fires.
    Park,
    /// The body returned or panicked; never resume again.
    Finished,
}

const D_YIELD: u8 = 0;
const D_PARK: u8 = 1;
const D_FINISHED: u8 = 2;

/// A coroutine stack: either its own guard-paged mapping (standalone
/// tasks) or a region borrowed from a [`StackSlab`] (clusters).
struct Stack {
    base: *mut u8,
    len: usize,
    /// Whether `base..base+len` is a mapping this stack must munmap on
    /// drop; slab regions are freed by the slab.
    owned: bool,
}

impl Stack {
    fn new(usable: usize) -> Stack {
        let usable = usable.max(2 * PAGE).next_multiple_of(PAGE);
        let len = usable + PAGE; // one guard page below
        unsafe {
            let base = sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_NONE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS | sys::MAP_NORESERVE,
                -1,
                0,
            );
            assert!(base != sys::MAP_FAILED, "task stack mmap failed");
            let rc = sys::mprotect(
                (base as usize + PAGE) as *mut _,
                usable,
                sys::PROT_READ | sys::PROT_WRITE,
            );
            assert_eq!(rc, 0, "task stack mprotect failed");
            Stack { base: base as *mut u8, len, owned: true }
        }
    }

    /// Highest usable address; page- and therefore 16-aligned.
    fn top(&self) -> u64 {
        self.base as u64 + self.len as u64
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        if self.owned {
            unsafe {
                sys::munmap(self.base.cast(), self.len);
            }
        }
    }
}

/// Per-stack guard pages cost two kernel VMAs per task (the `PROT_NONE`
/// hole splits the mapping), and `vm.max_map_count` defaults to ~65530:
/// beyond this many tasks a slab drops the interior guards so the whole
/// cluster fits in a handful of VMAs and 100k+ ranks stay mappable.
const GUARDED_MAX_TASKS: usize = 16384;

/// One mapping holding every task stack of a cluster.
///
/// Allocating 10k+ individual guard-paged stacks costs two syscalls and
/// two kernel VMAs apiece — at 32k ranks that is past the default
/// `vm.max_map_count` and the spawn fails outright. A slab reserves the
/// whole cluster's stacks with a single `mmap` (virtual, demand-paged),
/// keeping per-stack guard pages while the VMA budget allows
/// ([`GUARDED_MAX_TASKS`]) and falling back to one guard page below the
/// lowest stack beyond that. In guard-free mode an overflowing rank
/// clobbers its neighbor's stack instead of faulting — the tradeoff for
/// simulating rank counts the per-stack design cannot reach at all.
pub struct StackSlab {
    base: *mut u8,
    len: usize,
    usable: usize,
    stride: usize,
    n: usize,
}

// SAFETY: the slab is a passive address range; all mutation happens
// through the Tasks borrowing disjoint regions of it.
unsafe impl Send for StackSlab {}
unsafe impl Sync for StackSlab {}

impl StackSlab {
    /// Reserve stacks for `n` tasks of `usable` bytes each.
    pub fn new(n: usize, usable: usize) -> StackSlab {
        let usable = usable.max(2 * PAGE).next_multiple_of(PAGE);
        let guarded = n <= GUARDED_MAX_TASKS;
        // Guarded: [guard][stack 0][guard][stack 1]…; guard-free: one
        // guard page below stack 0, stacks adjacent above it.
        let (stride, len) =
            if guarded { (PAGE + usable, n * (PAGE + usable)) } else { (usable, PAGE + n * usable) };
        unsafe {
            let base = sys::mmap(
                std::ptr::null_mut(),
                len.max(PAGE),
                sys::PROT_NONE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS | sys::MAP_NORESERVE,
                -1,
                0,
            );
            assert!(base != sys::MAP_FAILED, "stack slab mmap failed ({n} stacks)");
            let rw = sys::PROT_READ | sys::PROT_WRITE;
            if guarded {
                for i in 0..n {
                    let lo = base as usize + i * stride + PAGE;
                    assert_eq!(
                        sys::mprotect(lo as *mut _, usable, rw),
                        0,
                        "stack slab mprotect failed"
                    );
                }
            } else if n > 0 {
                let lo = base as usize + PAGE;
                assert_eq!(
                    sys::mprotect(lo as *mut _, n * usable, rw),
                    0,
                    "stack slab mprotect failed"
                );
                // The guard-free slab is one contiguous RW range that
                // every task first-touches: huge pages cut the fault
                // count and the page-table/TLB footprint by 512x at
                // 100k-rank scale. Best effort — a kernel without THP
                // just ignores the hint.
                sys::madvise(lo as *mut _, n * usable, sys::MADV_HUGEPAGE);
            }
            StackSlab { base: base as *mut u8, len: len.max(PAGE), usable, stride, n }
        }
    }

    /// The `i`-th stack region (borrowed; freed with the slab).
    fn region(&self, i: usize) -> Stack {
        assert!(i < self.n, "slab holds {} stacks, asked for {i}", self.n);
        // Both layouts put stack `i` one page past `i * stride`: the
        // guarded layout skips that stack's own guard page, the
        // guard-free layout skips the single leading guard.
        let lo = PAGE + i * self.stride;
        Stack { base: (self.base as usize + lo) as *mut u8, len: self.usable, owned: false }
    }
}

impl Drop for StackSlab {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.base.cast(), self.len);
        }
    }
}

// One worker-side frame per OS thread: where the running task returns
// to, and which task is running. Set around every resume; tasks read it
// fresh after every suspension because they may migrate workers.
thread_local! {
    static WORKER_FRAME: Cell<*mut WorkerFrame> = const { Cell::new(std::ptr::null_mut()) };
}

struct WorkerFrame {
    worker_ctx: Context,
    task: *mut Task,
}

/// A resumable rank task. `Sync` so the scheduler can share references
/// across workers; the context and body are only ever touched by the
/// worker that currently owns the task (scheduler queues enforce
/// exclusive ownership), and the directive hand-off is atomic.
pub struct Task {
    ctx: std::cell::UnsafeCell<Context>,
    /// Keeps the stack mapping alive for the task's lifetime.
    _stack: Stack,
    directive: AtomicU8,
    body: std::cell::UnsafeCell<Option<Box<dyn FnOnce() + Send + 'static>>>,
    panic: std::cell::UnsafeCell<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

// SAFETY: see the struct docs — mutable state is owned by exactly one
// worker at a time (a task is on one run queue or one worker, never
// both), and cross-thread transfer happens through the scheduler's
// locks, which order the accesses.
unsafe impl Sync for Task {}
unsafe impl Send for Task {}

impl Task {
    /// Create a task that will run `body` on its own `stack_bytes`
    /// stack at first resume.
    ///
    /// # Safety
    ///
    /// `body` is type-erased to `'static`, but may borrow non-`'static`
    /// state: the caller must guarantee the task is driven to
    /// completion (or never resumed) before that state goes away —
    /// exactly the guarantee [`crate::event`]'s scoped runner provides.
    pub unsafe fn new(stack_bytes: usize, body: Box<dyn FnOnce() + Send + '_>) -> Task {
        Task::with_stack(Stack::new(stack_bytes), body)
    }

    /// Like [`Task::new`], but running on the `index`-th stack of
    /// `slab` instead of a private mapping.
    ///
    /// # Safety
    ///
    /// Everything [`Task::new`] requires, plus: `slab` must outlive the
    /// task, and no other task may use the same slab index.
    pub unsafe fn new_in(
        slab: &StackSlab,
        index: usize,
        body: Box<dyn FnOnce() + Send + '_>,
    ) -> Task {
        Task::with_stack(slab.region(index), body)
    }

    unsafe fn with_stack(stack: Stack, body: Box<dyn FnOnce() + Send + '_>) -> Task {
        let body: Box<dyn FnOnce() + Send + 'static> = std::mem::transmute(body);
        let mut ctx = Context::zeroed();
        ctx.rsp = stack.top();
        ctx.rip = netsim_task_start as unsafe extern "C" fn() as usize as u64;
        ctx.r13 = task_entry as extern "C" fn(*mut Task) -> ! as usize as u64;
        // r12 (the task pointer) is filled in at first resume, once the
        // task has a stable address.
        Task {
            ctx: std::cell::UnsafeCell::new(ctx),
            _stack: stack,
            directive: AtomicU8::new(D_YIELD),
            body: std::cell::UnsafeCell::new(Some(body)),
            panic: std::cell::UnsafeCell::new(None),
        }
    }

    /// Enter the task until it suspends; returns why it stopped. Must
    /// only be called by the worker that currently owns the task.
    pub fn resume(&self) -> Directive {
        let mut frame =
            WorkerFrame { worker_ctx: Context::zeroed(), task: self as *const Task as *mut Task };
        unsafe {
            let ctx = self.ctx.get();
            if (*ctx).r12 == 0 {
                (*ctx).r12 = self as *const Task as u64;
            }
            let prev = WORKER_FRAME.with(|w| w.replace(&mut frame));
            netsim_ctx_switch(&mut frame.worker_ctx, ctx);
            WORKER_FRAME.with(|w| w.set(prev));
        }
        match self.directive.load(Ordering::Acquire) {
            D_YIELD => Directive::Yield,
            D_PARK => Directive::Park,
            _ => Directive::Finished,
        }
    }

    /// Take the panic payload captured when the body unwound, if any.
    /// Meaningful once `resume` has returned [`Directive::Finished`].
    pub fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send + 'static>> {
        unsafe { (*self.panic.get()).take() }
    }
}

/// Suspend the currently running task with `directive`, returning
/// control to its worker. Returns when the scheduler next resumes the
/// task. Panics if called from outside a task.
pub fn suspend(directive: Directive) {
    let frame = WORKER_FRAME.with(|w| w.get());
    assert!(!frame.is_null(), "suspend() called outside a rank task");
    unsafe {
        let task = (*frame).task;
        let d = match directive {
            Directive::Yield => D_YIELD,
            Directive::Park => D_PARK,
            Directive::Finished => D_FINISHED,
        };
        (*task).directive.store(d, Ordering::Release);
        netsim_ctx_switch((*task).ctx.get(), &(*frame).worker_ctx);
    }
}

/// Whether the calling code is running inside a rank task.
pub fn on_task() -> bool {
    WORKER_FRAME.with(|w| !w.get().is_null())
}

extern "C" fn task_entry(task: *mut Task) -> ! {
    unsafe {
        let body = (*task.cast_const()).body.get().as_mut().unwrap().take().unwrap();
        // Unwinding must never cross the context-switch boundary: catch
        // everything and hand the payload to the scheduler.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
            *(*task).panic.get() = Some(payload);
        }
    }
    suspend(Directive::Finished);
    unreachable!("a finished task was resumed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn drive(task: &Task) -> (usize, Option<Box<dyn std::any::Any + Send>>) {
        let mut resumes = 0;
        loop {
            resumes += 1;
            if task.resume() == Directive::Finished {
                return (resumes, task.take_panic());
            }
        }
    }

    #[test]
    fn runs_to_completion() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let task = unsafe {
            Task::new(DEFAULT_STACK_BYTES, Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }))
        };
        let (resumes, panic) = drive(&task);
        assert_eq!(resumes, 1);
        assert!(panic.is_none());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn yields_interleave_with_worker() {
        let steps = Arc::new(AtomicUsize::new(0));
        let s = steps.clone();
        let task = unsafe {
            Task::new(DEFAULT_STACK_BYTES, Box::new(move || {
                for _ in 0..5 {
                    s.fetch_add(1, Ordering::SeqCst);
                    suspend(Directive::Yield);
                }
            }))
        };
        for expect in 1..=5 {
            assert_eq!(task.resume(), Directive::Yield);
            assert_eq!(steps.load(Ordering::SeqCst), expect);
        }
        assert_eq!(task.resume(), Directive::Finished);
    }

    #[test]
    fn panic_is_captured_not_propagated() {
        let task = unsafe {
            Task::new(DEFAULT_STACK_BYTES, Box::new(|| {
                panic!("rank exploded: {}", 42);
            }))
        };
        let (_, panic) = drive(&task);
        let payload = panic.expect("panic captured");
        // The compiler may const-fold the format into a &'static str.
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap();
        assert_eq!(msg, "rank exploded: 42");
    }

    #[test]
    fn locals_survive_suspension_and_fp_state_holds() {
        let out = Arc::new(AtomicUsize::new(0));
        let o = out.clone();
        let task = unsafe {
            Task::new(DEFAULT_STACK_BYTES, Box::new(move || {
                let mut acc = 1.0f64;
                let locals: Vec<u64> = (0..64).collect();
                for &l in locals.iter().take(10) {
                    acc = acc.mul_add(1.5, l as f64);
                    suspend(Directive::Yield);
                }
                o.store(acc as usize, Ordering::SeqCst);
            }))
        };
        drive(&task);
        let mut acc = 1.0f64;
        for i in 0..10 {
            acc = acc.mul_add(1.5, i as f64);
        }
        assert_eq!(out.load(Ordering::SeqCst), acc as usize);
    }

    #[test]
    fn thousands_of_tasks_fit() {
        // 10k coroutine stacks are virtual reservations, not resident
        // memory: creating and running them all must just work.
        let n = 10_000;
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Task> = (0..n)
            .map(|_| {
                let c = counter.clone();
                unsafe {
                    Task::new(DEFAULT_STACK_BYTES, Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                        suspend(Directive::Yield);
                        c.fetch_add(1, Ordering::SeqCst);
                    }))
                }
            })
            .collect();
        for t in &tasks {
            assert_eq!(t.resume(), Directive::Yield);
        }
        assert_eq!(counter.load(Ordering::SeqCst), n);
        for t in &tasks {
            assert_eq!(t.resume(), Directive::Finished);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2 * n);
    }

    #[test]
    fn tasks_migrate_between_worker_threads() {
        // Suspend on one OS thread, resume on another: the context is
        // thread-agnostic and the worker frame is re-read per resume.
        let task = Arc::new(unsafe {
            Task::new(DEFAULT_STACK_BYTES, Box::new(|| {
                let a = 7u64;
                suspend(Directive::Park);
                assert_eq!(a, 7);
            }))
        });
        assert_eq!(task.resume(), Directive::Park);
        let t2 = task.clone();
        std::thread::spawn(move || {
            assert_eq!(t2.resume(), Directive::Finished);
            assert!(t2.take_panic().is_none());
        })
        .join()
        .unwrap();
    }
}
