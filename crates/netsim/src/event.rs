//! Event-driven rank scheduler: multiplexes thousands of simulated
//! ranks (stackful [`crate::task::Task`]s) onto a small worker pool.
//!
//! This is the engine behind [`crate::cluster::Backend::Event`]. The
//! thread backend burns one OS thread (and two kernel context switches
//! per blocking hand-off) per rank, which tops out around a thousand
//! ranks on one machine. Here a rank that would block — on a mailbox
//! recv, a `waitall`, a barrier — *parks*: it saves its registers and
//! returns the worker to the run queue, and is re-queued when the event
//! that unblocks it fires (a message push, the last barrier arrival, a
//! timer expiry). Ranks never spin in kernel space, so the simulable
//! rank count is bounded by memory, not by scheduler thrash.
//!
//! ## Structure
//!
//! * **Run queues**: one deque per worker; a task's home queue is
//!   `rank % workers`. Owners pop from the front, idle workers steal
//!   from the back of other queues. Queue bookkeeping lives under a
//!   single scheduler mutex — with a handful of workers and coarse
//!   tasks (a rank runs a whole compute phase per slice) the lock is
//!   not a bottleneck, and it makes quiescence detection exact.
//! * **Two-phase parking**: a task *requests* parking and suspends;
//!   its worker then *applies* the transition under the task's state
//!   lock. A wake that races with the request (message pushed between
//!   the task's last mailbox poll and the state flip) sets
//!   `wake_pending`, which the apply step converts into an immediate
//!   re-queue. Wakes are never lost; spurious wakes are absorbed by
//!   the callers' re-check loops.
//! * **Virtual deadlines**: recv timeouts do not block wall-clock
//!   time. A deadline is recorded when the task parks, and fires only
//!   at *quiescence* — no task runnable or running — because with
//!   eager message delivery that is exactly the moment the awaited
//!   message provably can never arrive. Chaos runs that spend seconds
//!   in real timeouts on the thread backend finish instantly here,
//!   with identical outcomes.
//! * **Deadlock recovery**: quiescence with parked tasks but no armed
//!   deadline means the simulated program is deadlocked. Instead of
//!   hanging like thread-per-rank would, the scheduler aborts the
//!   cluster: every parked task is woken with an expiry signal, recv
//!   paths surface structured [`crate::NetsimError::Timeout`] reports,
//!   and the run terminates.
//!
//! Panics in a rank body are caught at the task boundary and collected;
//! the first one aborts the cluster and becomes a
//! [`crate::NetsimError::RankPanicked`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::task::{suspend, Directive, StackSlab, Task};

/// Why [`Sched::park`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wake {
    /// The event the task parked for fired (mailbox push, barrier
    /// release); re-check the condition.
    Notified,
    /// The park deadline expired (at quiescence) or the cluster is
    /// aborting; give up on the awaited event.
    Expired,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    Running,
    Parked,
    Finished,
}

struct TaskMeta {
    state: TState,
    /// A wake arrived while the task was still `Running` (pre-park
    /// race); convert the next park request into a re-queue.
    wake_pending: bool,
    /// The task is being woken by deadline expiry / abort, not by its
    /// awaited event.
    expired: bool,
    /// Deadline requested by the in-flight park, consumed by the
    /// worker when it applies the transition.
    pending_deadline: Option<Instant>,
}

struct Core {
    queues: Vec<VecDeque<u32>>,
    /// Tasks sitting in some queue.
    queued: usize,
    /// Tasks currently executing on a worker.
    running: usize,
    /// Unfinished tasks.
    live: usize,
    /// Workers blocked on the condvar.
    sleepers: usize,
    /// Armed virtual deadline per task (`None` = parked without one, or
    /// not parked). A fixed slot per task instead of a heap: the slot
    /// is cleared whenever its task leaves the parked state, so there
    /// are no stale entries to drain, the steady-state park/wake hot
    /// path never allocates, and memory stays O(ranks) over any run
    /// length. Expiry scans for the minimum — O(ranks), but only at
    /// quiescence, when by definition there is nothing else to do.
    deadlines: Vec<Option<Instant>>,
}

struct BarrierState {
    count: usize,
    gen: u64,
    waiting: Vec<u32>,
}

/// The scheduler: tasks, their state machines, run queues, the
/// cluster-wide barrier and the panic/abort plumbing.
pub struct Sched {
    tasks: Vec<Task>,
    /// Backs every task stack; must outlive `tasks` (dropped after —
    /// struct fields drop in declaration order).
    _slab: StackSlab,
    metas: Vec<Mutex<TaskMeta>>,
    /// Per-rank "poke me on mailbox push" flags. Set only while the
    /// rank is inside a mailbox wait loop, so a message push never
    /// wakes a rank parked on an unrelated event (e.g. the barrier).
    want_wake: Vec<AtomicBool>,
    core: Mutex<Core>,
    work: Condvar,
    barrier: Mutex<BarrierState>,
    panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send + 'static>)>>,
    abort: AtomicBool,
    deadlocked: AtomicBool,
    nworkers: usize,
}

impl Sched {
    /// Build a scheduler over `bodies` (one task per rank, task id ==
    /// index) with `workers` workers and `stack_bytes` per task stack.
    ///
    /// # Safety
    ///
    /// Bodies may borrow non-`'static` state; the caller must call
    /// [`Sched::run`] to completion before that state is dropped (and
    /// must not drop an un-run `Sched` whose bodies borrow locals
    /// while resuming tasks elsewhere — in practice: build, run, drop).
    pub unsafe fn new(
        bodies: Vec<Box<dyn FnOnce() + Send + '_>>,
        workers: usize,
        stack_bytes: usize,
    ) -> Sched {
        let n = bodies.len();
        let workers = workers.max(1);
        // One slab mmap for every stack: per-task mappings cost two
        // syscalls and two kernel VMAs each, which both dominates spawn
        // time and hits vm.max_map_count near 32k ranks.
        let slab = StackSlab::new(n, stack_bytes);
        let tasks: Vec<Task> =
            bodies.into_iter().enumerate().map(|(i, b)| Task::new_in(&slab, i, b)).collect();
        let metas = (0..n)
            .map(|_| {
                Mutex::new(TaskMeta {
                    state: TState::Runnable,
                    wake_pending: false,
                    expired: false,
                    pending_deadline: None,
                })
            })
            .collect();
        let mut queues: Vec<VecDeque<u32>> =
            (0..workers).map(|_| VecDeque::with_capacity(n)).collect();
        for t in 0..n {
            queues[t % workers].push_back(t as u32);
        }
        Sched {
            tasks,
            _slab: slab,
            metas,
            want_wake: (0..n).map(|_| AtomicBool::new(false)).collect(),
            core: Mutex::new(Core {
                queues,
                queued: n,
                running: 0,
                live: n,
                sleepers: 0,
                deadlines: vec![None; n],
            }),
            work: Condvar::new(),
            barrier: Mutex::new(BarrierState { count: 0, gen: 0, waiting: Vec::with_capacity(n) }),
            panics: Mutex::new(Vec::new()),
            abort: AtomicBool::new(false),
            deadlocked: AtomicBool::new(false),
            nworkers: workers,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the scheduler has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Drive all tasks to completion. The calling thread becomes
    /// worker 0; `workers - 1` helper threads are spawned for the
    /// duration of the run.
    pub fn run(&self) {
        if self.nworkers == 1 {
            self.worker_loop(0);
        } else {
            std::thread::scope(|s| {
                for w in 1..self.nworkers {
                    s.spawn(move || self.worker_loop(w));
                }
                self.worker_loop(0);
            });
        }
    }

    fn worker_loop(&self, w: usize) {
        loop {
            if let Some(tid) = self.grab(w) {
                self.run_one(tid);
                continue;
            }
            let mut core = self.core.lock().unwrap();
            if core.queued > 0 {
                continue; // lost a race with grab; retry
            }
            if core.live == 0 {
                self.work.notify_all();
                return;
            }
            if core.running == 0 {
                // Quiescence: every live task is parked. Advance the
                // virtual clock to the earliest armed deadline —
                // min by (instant, task) for deterministic expiry
                // order — or declare deadlock.
                let earliest = core
                    .deadlines
                    .iter()
                    .enumerate()
                    .filter_map(|(t, d)| d.map(|when| (when, t as u32)))
                    .min();
                if let Some((_, tid)) = earliest {
                    core.deadlines[tid as usize] = None;
                    drop(core);
                    self.expire(tid);
                } else {
                    drop(core);
                    self.deadlocked.store(true, Ordering::SeqCst);
                    self.abort.store(true, Ordering::SeqCst);
                    self.wake_all_parked();
                }
                continue;
            }
            core.sleepers += 1;
            let mut core = self.work.wait(core).unwrap();
            core.sleepers -= 1;
        }
    }

    fn grab(&self, w: usize) -> Option<u32> {
        let mut core = self.core.lock().unwrap();
        let tid = core.queues[w].pop_front().or_else(|| {
            (0..core.queues.len())
                .filter(|&o| o != w)
                .find_map(|o| core.queues[o].pop_back())
        })?;
        core.queued -= 1;
        core.running += 1;
        drop(core);
        self.metas[tid as usize].lock().unwrap().state = TState::Running;
        Some(tid)
    }

    fn run_one(&self, tid: u32) {
        let t = tid as usize;
        match self.tasks[t].resume() {
            Directive::Finished => {
                if let Some(payload) = self.tasks[t].take_panic() {
                    self.panics.lock().unwrap().push((t, payload));
                    self.abort.store(true, Ordering::SeqCst);
                    self.metas[t].lock().unwrap().state = TState::Finished;
                    self.wake_all_parked();
                } else {
                    self.metas[t].lock().unwrap().state = TState::Finished;
                }
                let mut core = self.core.lock().unwrap();
                core.running -= 1;
                core.live -= 1;
                if core.live == 0 {
                    self.work.notify_all();
                }
            }
            Directive::Yield => {
                {
                    let mut m = self.metas[t].lock().unwrap();
                    m.state = TState::Runnable;
                    m.wake_pending = false;
                }
                let mut core = self.core.lock().unwrap();
                let home = t % core.queues.len();
                core.queues[home].push_back(tid);
                core.queued += 1;
                core.running -= 1;
                if core.sleepers > 0 {
                    self.work.notify_one();
                }
            }
            Directive::Park => {
                let mut m = self.metas[t].lock().unwrap();
                let dl = m.pending_deadline.take();
                if m.wake_pending {
                    // The event fired between the task's request and
                    // now: re-queue instead of parking.
                    m.wake_pending = false;
                    m.state = TState::Runnable;
                    drop(m);
                    let mut core = self.core.lock().unwrap();
                    let home = t % core.queues.len();
                    core.queues[home].push_back(tid);
                    core.queued += 1;
                    core.running -= 1;
                    if core.sleepers > 0 {
                        self.work.notify_one();
                    }
                } else {
                    m.state = TState::Parked;
                    drop(m);
                    let mut core = self.core.lock().unwrap();
                    core.running -= 1;
                    core.deadlines[t] = dl;
                }
            }
        }
    }

    /// Wake `tid` because its virtual deadline was selected at
    /// quiescence. At quiescence no task is running, so nothing can
    /// have raced the wake; the `Parked` check is belt-and-braces.
    fn expire(&self, tid: u32) {
        let mut m = self.metas[tid as usize].lock().unwrap();
        if m.state == TState::Parked {
            m.expired = true;
            m.state = TState::Runnable;
            drop(m);
            self.enqueue(tid);
        }
    }

    fn wake_all_parked(&self) {
        for t in 0..self.tasks.len() {
            let mut m = self.metas[t].lock().unwrap();
            if m.state == TState::Parked {
                m.expired = true;
                m.state = TState::Runnable;
                drop(m);
                self.enqueue(t as u32);
            }
        }
    }

    fn enqueue(&self, tid: u32) {
        let mut core = self.core.lock().unwrap();
        // Leaving the parked state invalidates any armed deadline.
        core.deadlines[tid as usize] = None;
        let home = tid as usize % core.queues.len();
        core.queues[home].push_back(tid);
        core.queued += 1;
        if core.sleepers > 0 {
            self.work.notify_one();
        }
    }

    /// Wake every task so each can re-examine shared state — the
    /// revocation broadcast a dying rank issues so survivors blocked in
    /// receives or fences observe the failure instead of parking until
    /// their deadlines. Unlike the abort path this leaves the scheduler
    /// healthy: woken tasks see a plain [`Wake::Notified`], re-check,
    /// and may park again.
    pub fn wake_all(&self) {
        for t in 0..self.tasks.len() {
            self.make_runnable(t as u32);
        }
    }

    /// Make `tid` runnable because the event it parked for fired. Safe
    /// against every phase of the park protocol: a still-running task
    /// gets `wake_pending`, a parked one is re-queued, a queued or
    /// finished one is left alone.
    pub fn make_runnable(&self, tid: u32) {
        let mut m = self.metas[tid as usize].lock().unwrap();
        match m.state {
            TState::Parked => {
                m.state = TState::Runnable;
                drop(m);
                self.enqueue(tid);
            }
            TState::Running => m.wake_pending = true,
            TState::Runnable | TState::Finished => {}
        }
    }

    /// Called by a producer after pushing into `rank`'s mailbox: wake
    /// the rank if it declared interest via [`Sched::arm_mailbox`].
    pub fn notify_mailbox(&self, rank: usize) {
        if self.want_wake[rank].swap(false, Ordering::SeqCst) {
            self.make_runnable(rank as u32);
        }
    }

    /// Declare that `rank` is about to poll its mailbox and wants a
    /// wake on the next push. Callers must re-poll after arming (the
    /// push may already have happened).
    pub fn arm_mailbox(&self, rank: usize) {
        self.want_wake[rank].store(true, Ordering::SeqCst);
    }

    /// Withdraw a previously armed mailbox wake (the poll succeeded).
    pub fn disarm_mailbox(&self, rank: usize) {
        self.want_wake[rank].store(false, Ordering::SeqCst);
    }

    /// Park the calling task (which must be `tid`) until a wake or
    /// until `deadline` fires at quiescence. Returns immediately with
    /// [`Wake::Expired`] if the cluster is aborting, or with
    /// [`Wake::Notified`] if a wake already raced in.
    pub fn park(&self, tid: u32, deadline: Option<Instant>) -> Wake {
        {
            let mut m = self.metas[tid as usize].lock().unwrap();
            if self.abort.load(Ordering::SeqCst) {
                m.expired = false;
                return Wake::Expired;
            }
            if m.wake_pending {
                m.wake_pending = false;
                return Wake::Notified;
            }
            m.pending_deadline = deadline;
        }
        suspend(Directive::Park);
        let mut m = self.metas[tid as usize].lock().unwrap();
        if m.expired {
            m.expired = false;
            Wake::Expired
        } else {
            Wake::Notified
        }
    }

    /// Cooperatively yield the calling task to the back of its run
    /// queue. Spin-polling paths (`try_wait`, `progress`) call this on
    /// a miss so producers get CPU time even on a single worker.
    pub fn yield_now(&self) {
        suspend(Directive::Yield);
    }

    /// Cluster-wide barrier for the calling task `tid`. Returns `false`
    /// if the cluster aborted instead of releasing the barrier.
    pub fn barrier_wait(&self, tid: u32) -> bool {
        let my_gen;
        {
            let mut b = self.barrier.lock().unwrap();
            if self.abort.load(Ordering::SeqCst) {
                return false;
            }
            b.count += 1;
            if b.count == self.tasks.len() {
                b.count = 0;
                b.gen += 1;
                // Wake in place and clear (capacity is retained —
                // `mem::take` would surrender it and force the next
                // generation to reallocate). Holding the barrier lock
                // while waking is safe: `make_runnable` only touches
                // task metas and the core queue, never barrier state.
                for i in 0..b.waiting.len() {
                    self.make_runnable(b.waiting[i]);
                }
                b.waiting.clear();
                return true;
            }
            my_gen = b.gen;
            b.waiting.push(tid);
        }
        loop {
            if self.abort.load(Ordering::SeqCst) {
                return false;
            }
            if self.barrier.lock().unwrap().gen != my_gen {
                return true;
            }
            self.park(tid, None);
        }
    }

    /// Whether the cluster is aborting (rank panic or deadlock).
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// Whether abort was triggered by deadlock detection.
    pub fn deadlock_detected(&self) -> bool {
        self.deadlocked.load(Ordering::SeqCst)
    }

    /// Drain captured rank panics, in the order they were observed
    /// (the first is the root cause; later ones are usually secondary
    /// failures of ranks woken by the abort).
    pub fn take_panics(&self) -> Vec<(usize, Box<dyn std::any::Any + Send + 'static>)> {
        std::mem::take(&mut *self.panics.lock().unwrap())
    }
}

/// Number of workers to use: `NETSIM_WORKERS` if set, else the
/// machine's parallelism capped at 8 (coarse tasks stop scaling past
/// that, and fewer workers keep scheduling overhead predictable).
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("NETSIM_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Per-task stack size for an `n`-rank cluster: `NETSIM_STACK_BYTES`
/// if set, else [`crate::task::DEFAULT_STACK_BYTES`], shrunk to
/// 128 KiB past ~16k ranks. The reservation is virtual either way, but
/// at huge rank counts the *address-space spread* itself costs: 64k
/// one-MiB stacks sprawl over 64 GiB of sparse VA, and the page-table
/// and TLB footprint of walking them dominates the simulation. Rank
/// bodies at those scales are communication skeletons with shallow
/// frames; anything deeper can restore big stacks via the env knob.
pub fn default_stack_bytes(n: usize) -> usize {
    if let Ok(v) = std::env::var("NETSIM_STACK_BYTES") {
        if let Ok(b) = v.trim().parse::<usize>() {
            return b.max(16 * 1024);
        }
    }
    if n > 16 * 1024 {
        128 * 1024
    } else {
        crate::task::DEFAULT_STACK_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn run_bodies(bodies: Vec<Box<dyn FnOnce() + Send + '_>>, workers: usize) -> Sched {
        let sched = unsafe { Sched::new(bodies, workers, 256 * 1024) };
        sched.run();
        sched
    }

    #[test]
    fn tasks_all_complete() {
        let n = 100;
        let count = AtomicUsize::new(0);
        std::thread::scope(|_| {
            let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n)
                .map(|_| {
                    let c = &count;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_bodies(bodies, 1);
        });
        assert_eq!(count.load(Ordering::SeqCst), n);
    }

    #[test]
    fn mailbox_handshake_wakes_consumer() {
        // Producer pushes into a shared slot and pokes; consumer parks
        // until the value arrives. Exercises arm/notify and the
        // wake_pending race path.
        let slot: Mutex<Option<u64>> = Mutex::new(None);
        let got = AtomicUsize::new(0);
        let sched_holder: Mutex<Option<&Sched>> = Mutex::new(None);
        // Tasks need &Sched before Sched exists; thread the reference
        // through a once-set holder primed by the first task to run.
        // Simpler for the test: build bodies that read it lazily.
        let holder = &sched_holder;
        let slot_ref = &slot;
        let got_ref = &got;
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            // rank 0: consumer
            Box::new(move || {
                let sched = holder.lock().unwrap().unwrap();
                loop {
                    if let Some(v) = slot_ref.lock().unwrap().take() {
                        got_ref.store(v as usize, Ordering::SeqCst);
                        return;
                    }
                    sched.arm_mailbox(0);
                    if let Some(v) = slot_ref.lock().unwrap().take() {
                        sched.disarm_mailbox(0);
                        got_ref.store(v as usize, Ordering::SeqCst);
                        return;
                    }
                    sched.park(0, None);
                }
            }),
            // rank 1: producer, yields a few times first so the
            // consumer definitely parks.
            Box::new(move || {
                let sched = holder.lock().unwrap().unwrap();
                for _ in 0..3 {
                    sched.yield_now();
                }
                *slot_ref.lock().unwrap() = Some(42);
                sched.notify_mailbox(0);
            }),
        ];
        let sched = unsafe { Sched::new(bodies, 1, 256 * 1024) };
        *sched_holder.lock().unwrap() = Some(unsafe { std::mem::transmute::<&Sched, &Sched>(&sched) });
        sched.run();
        assert_eq!(got.load(Ordering::SeqCst), 42);
        assert!(!sched.aborted());
    }

    #[test]
    fn barrier_releases_all_ranks_together() {
        let n = 16;
        let before = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        let holder: Mutex<Option<&Sched>> = Mutex::new(None);
        let (h, b, v) = (&holder, &before, &violations);
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n)
            .map(|i| {
                Box::new(move || {
                    let sched = h.lock().unwrap().unwrap();
                    b.fetch_add(1, Ordering::SeqCst);
                    assert!(sched.barrier_wait(i as u32));
                    if b.load(Ordering::SeqCst) != n {
                        v.fetch_add(1, Ordering::SeqCst);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let sched = unsafe { Sched::new(bodies, 1, 256 * 1024) };
        *h.lock().unwrap() = Some(unsafe { std::mem::transmute::<&Sched, &Sched>(&sched) });
        sched.run();
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn deadline_fires_at_quiescence_without_real_waiting() {
        // A 10-minute deadline must fire immediately once nothing else
        // can run: the clock is virtual.
        let expired = AtomicUsize::new(0);
        let holder: Mutex<Option<&Sched>> = Mutex::new(None);
        let (h, e) = (&holder, &expired);
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(move || {
            let sched = h.lock().unwrap().unwrap();
            let far = Instant::now() + Duration::from_secs(600);
            if sched.park(0, Some(far)) == Wake::Expired {
                e.fetch_add(1, Ordering::SeqCst);
            }
        })];
        let sched = unsafe { Sched::new(bodies, 1, 256 * 1024) };
        *h.lock().unwrap() = Some(unsafe { std::mem::transmute::<&Sched, &Sched>(&sched) });
        let t0 = Instant::now();
        sched.run();
        assert!(t0.elapsed() < Duration::from_secs(5), "deadline must be virtual");
        assert_eq!(expired.load(Ordering::SeqCst), 1);
        assert!(!sched.deadlock_detected());
    }

    #[test]
    fn deadlines_expire_in_timestamp_order() {
        let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let holder: Mutex<Option<&Sched>> = Mutex::new(None);
        let (h, o) = (&holder, &order);
        let base = Instant::now() + Duration::from_secs(100);
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|i| {
                Box::new(move || {
                    let sched = h.lock().unwrap().unwrap();
                    // rank i parks with deadline base + (3 - i): expiry
                    // order must be 3, 2, 1, 0.
                    let dl = base + Duration::from_secs((3 - i) as u64);
                    assert_eq!(sched.park(i as u32, Some(dl)), Wake::Expired);
                    o.lock().unwrap().push(i);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let sched = unsafe { Sched::new(bodies, 1, 256 * 1024) };
        *h.lock().unwrap() = Some(unsafe { std::mem::transmute::<&Sched, &Sched>(&sched) });
        sched.run();
        assert_eq!(*order.lock().unwrap(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn true_deadlock_is_detected_and_recovered() {
        // Two ranks park forever with no deadline: the scheduler must
        // detect the deadlock, abort, and wake both with Expired.
        let expired = AtomicUsize::new(0);
        let holder: Mutex<Option<&Sched>> = Mutex::new(None);
        let (h, e) = (&holder, &expired);
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..2)
            .map(|i| {
                Box::new(move || {
                    let sched = h.lock().unwrap().unwrap();
                    if sched.park(i as u32, None) == Wake::Expired {
                        e.fetch_add(1, Ordering::SeqCst);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let sched = unsafe { Sched::new(bodies, 1, 256 * 1024) };
        *h.lock().unwrap() = Some(unsafe { std::mem::transmute::<&Sched, &Sched>(&sched) });
        sched.run();
        assert!(sched.deadlock_detected());
        assert!(sched.aborted());
        assert_eq!(expired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panic_aborts_cluster_and_is_captured_first() {
        let holder: Mutex<Option<&Sched>> = Mutex::new(None);
        let h = &holder;
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(move || {
                let sched = h.lock().unwrap().unwrap();
                // Parked forever; must be released by the abort.
                let _ = sched.park(0, None);
            }),
            Box::new(move || {
                let sched = h.lock().unwrap().unwrap();
                sched.yield_now();
                panic!("rank 1 died");
            }),
        ];
        let sched = unsafe { Sched::new(bodies, 1, 256 * 1024) };
        *h.lock().unwrap() = Some(unsafe { std::mem::transmute::<&Sched, &Sched>(&sched) });
        sched.run();
        let panics = sched.take_panics();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].0, 1);
        assert_eq!(panics[0].1.downcast_ref::<&str>(), Some(&"rank 1 died"));
        assert!(sched.aborted());
        assert!(!sched.deadlock_detected());
    }

    #[test]
    fn work_stealing_multi_worker_completes() {
        let n = 64;
        let count = AtomicUsize::new(0);
        let holder: Mutex<Option<&Sched>> = Mutex::new(None);
        let (h, c) = (&holder, &count);
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n)
            .map(|_| {
                Box::new(move || {
                    let sched = h.lock().unwrap().unwrap();
                    for _ in 0..4 {
                        sched.yield_now();
                    }
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let sched = unsafe { Sched::new(bodies, 4, 256 * 1024) };
        *h.lock().unwrap() = Some(unsafe { std::mem::transmute::<&Sched, &Sched>(&sched) });
        sched.run();
        assert_eq!(count.load(Ordering::SeqCst), n);
    }
}
