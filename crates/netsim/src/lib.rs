//! # netsim — a thread-rank MPI substrate with a modeled fabric
//!
//! Replaces MPI + the Aries/InfiniBand network for this reproduction.
//! Ranks are OS threads; point-to-point messages really move data between
//! rank memories with MPI matching semantics (`(source, tag)`,
//! non-overtaking). Time is hybrid:
//!
//! * on-node phases (compute, packing) are **really executed and
//!   measured** via [`RankCtx::time_calc`] / [`RankCtx::time_pack`];
//! * the fabric is **modeled** by [`NetworkModel`] (LogGP-style `o`, `α`,
//!   `g`, `β`), charged to the `call`/`wait` timers.
//!
//! The timer taxonomy (`calc`/`pack`/`call`/`wait`) matches the paper's
//! artifact output so harness tables line up with the published ones.
//!
//! The fabric can also be made *hostile on purpose*: a seeded
//! [`FaultConfig`] (see [`fault`]) deterministically drops, duplicates,
//! corrupts and delays messages, and the transport reports stalls and
//! damage as structured [`NetsimError`] values instead of hanging or
//! panicking — the substrate for chaos testing the exchange protocols
//! built on top.
//!
//! ```
//! use netsim::{run_cluster, CartTopo, NetworkModel};
//!
//! // A 2-rank ring exchanging one value.
//! let topo = CartTopo::new(&[2], true);
//! let got = run_cluster(&topo, NetworkModel::theta_aries(), |ctx| {
//!     let peer = 1 - ctx.rank();
//!     let h = ctx.irecv(peer, 0).unwrap();
//!     ctx.isend(peer, 0, &[ctx.rank() as f64]).unwrap();
//!     let mut buf = [0.0];
//!     ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
//!     buf[0]
//! });
//! assert_eq!(got, vec![1.0, 0.0]);
//! ```

#![warn(missing_docs)]

pub use telemetry;

pub mod cluster;
pub mod collective;
pub mod error;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub mod event;
pub mod fault;
pub mod hier;
pub mod model;
pub mod nbx;
pub mod partition;
pub mod timers;
pub mod topo;
pub mod trace;
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub mod task;

pub use cluster::{
    run_cluster, run_cluster_faulty, run_cluster_on, try_run_cluster, try_run_cluster_faulty,
    try_run_cluster_on, Backend, RankCtx, RecvHandle, RecvdMsg, POOL_CAP,
};
pub use collective::TimerSummary;
pub use error::NetsimError;
pub use fault::{
    frame_checksum, FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultStats, ProcFault,
    CTRL_TAG_BIT,
};
pub use nbx::{Ibarrier, NbxStats};
pub use partition::{
    PartitionStats, PartitionTable, PartitionedRecv, PartitionedSend, DEFAULT_EAGER_BYTES,
};
pub use trace::{MsgEvent, Trace};
pub use hier::{HierarchicalNetworkModel, NodeShape};
pub use model::NetworkModel;
pub use timers::{timed, Timers};
pub use topo::{CartTopo, TopoError};
