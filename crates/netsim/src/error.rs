//! Structured transport errors.
//!
//! The original substrate treated every misuse or stall as a panic or an
//! infinite block: a short payload tripped an `assert_eq!` deep inside
//! `waitall_into`, and an unmatched receive hung the rank thread
//! forever. Under fault injection (see [`crate::fault`]) both become
//! *expected* runtime outcomes, so the public API reports them as typed
//! errors instead.

use std::fmt;

/// Upper bound on the `(source, tag)` entries a [`NetsimError::Timeout`]
/// diagnostic carries in `pending` and `mailbox`. The error path is the
/// one place the steady-state transport allocates (see
/// `netsim/tests/event_alloc.rs`); capping the dump keeps that
/// allocation bounded regardless of rank count, and keeps the rendered
/// error readable when thousands of receives expire at once. Builders
/// keep the lexicographically smallest keys so the dump is
/// deterministic.
pub const MAX_DIAG_KEYS: usize = 16;

/// Errors surfaced by the netsim public API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetsimError {
    /// A `waitall_*` deadline expired with receives still pending.
    ///
    /// `pending` lists the `(source, tag)` pairs that never matched;
    /// `mailbox` is a diagnostic dump of the `(source, tag, queued)`
    /// keys that *are* sitting in this rank's mailbox — the deadlock
    /// detector's view of what arrived but was never asked for.
    Timeout {
        /// Rank whose receive timed out.
        rank: usize,
        /// Posted receives that never matched, as `(source, tag)`.
        pending: Vec<(usize, u64)>,
        /// Unmatched mailbox keys at expiry: `(source, tag, queued)`.
        mailbox: Vec<(usize, u64, usize)>,
    },
    /// A delivered message's length did not match the posted receive.
    SizeMismatch {
        /// Receiving rank.
        rank: usize,
        /// Sending rank.
        source: usize,
        /// Message tag.
        tag: u64,
        /// Elements the receive expected.
        expected: usize,
        /// Elements the message carried.
        got: usize,
    },
    /// A send or receive referenced a rank outside the topology.
    InvalidRank {
        /// The offending rank id.
        rank: usize,
        /// Topology size.
        size: usize,
    },
    /// A loopback transfer's source and destination lengths differ.
    LoopbackMismatch {
        /// Rank performing the loopback.
        rank: usize,
        /// Message tag.
        tag: u64,
        /// Source elements.
        src_len: usize,
        /// Destination elements.
        dst_len: usize,
    },
    /// A reliable-exchange retry budget was exhausted without
    /// convergence (raised by protocol layers built on the transport).
    RetriesExhausted {
        /// Rank that gave up.
        rank: usize,
        /// Rounds attempted.
        rounds: u32,
        /// `(source, tag)` pairs still missing.
        pending: Vec<(usize, u64)>,
    },
    /// A rank suffered a crash-stop process fault. The failure detector
    /// surfaces this on every survivor whose blocking receive, wait, or
    /// fence observed the revocation — instead of hanging on messages
    /// the dead rank will never send. Resilient drivers (see the core
    /// checkpoint harness) catch it and run a recovery epoch; everyone
    /// else propagates it as a structured run failure.
    RankFailed {
        /// The rank that died.
        rank: usize,
        /// The surviving rank that observed (or reports) the failure.
        detected_by: usize,
        /// The timestep the victim was executing when it died.
        step: u64,
    },
    /// A rank body panicked. The panic was caught at the rank boundary,
    /// the surviving ranks were woken and unwound, and the first panic
    /// observed (the root cause — later ones are usually secondary
    /// failures of ranks unblocked by the abort) is reported here
    /// instead of tearing down the process through a poisoned join.
    RankPanicked {
        /// Rank whose body panicked first.
        rank: usize,
        /// The panic payload, rendered to a string.
        payload: String,
    },
}

impl fmt::Display for NetsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetsimError::Timeout { rank, pending, mailbox } => {
                write!(
                    f,
                    "rank {rank}: receive deadline expired with {} pending receive(s): ",
                    pending.len()
                )?;
                for (i, (src, tag)) in pending.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(src {src}, tag {tag:#x})")?;
                }
                if pending.len() >= MAX_DIAG_KEYS {
                    write!(f, ", … (dump capped at {MAX_DIAG_KEYS})")?;
                }
                if mailbox.is_empty() {
                    write!(f, "; mailbox is empty (likely dropped or never sent)")
                } else {
                    write!(f, "; unmatched mailbox keys:")?;
                    for (src, tag, n) in mailbox {
                        write!(f, " (src {src}, tag {tag:#x}) x{n}")?;
                    }
                    if mailbox.len() >= MAX_DIAG_KEYS {
                        write!(f, " … (dump capped at {MAX_DIAG_KEYS})")?;
                    }
                    Ok(())
                }
            }
            NetsimError::SizeMismatch { rank, source, tag, expected, got } => write!(
                f,
                "rank {rank}: message length mismatch from rank {source} tag {tag:#x}: \
                 expected {expected} elements, got {got}"
            ),
            NetsimError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} is outside the {size}-rank topology")
            }
            NetsimError::LoopbackMismatch { rank, tag, src_len, dst_len } => write!(
                f,
                "rank {rank}: loopback length mismatch (tag {tag:#x}): \
                 source {src_len} elements, destination {dst_len}"
            ),
            NetsimError::RetriesExhausted { rank, rounds, pending } => write!(
                f,
                "rank {rank}: retry budget exhausted after {rounds} round(s) with \
                 {} message(s) still missing",
                pending.len()
            ),
            NetsimError::RankFailed { rank, detected_by, step } => write!(
                f,
                "rank {rank} failed (crash-stop) during step {step}, \
                 detected by rank {detected_by}"
            ),
            NetsimError::RankPanicked { rank, payload } => {
                write!(f, "rank {rank} panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for NetsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_message_lists_pending_and_mailbox() {
        let e = NetsimError::Timeout {
            rank: 3,
            pending: vec![(1, 0x42), (2, 7)],
            mailbox: vec![(5, 9, 2)],
        };
        let s = e.to_string();
        assert!(s.contains("rank 3"));
        assert!(s.contains("(src 1, tag 0x42)"));
        assert!(s.contains("(src 5, tag 0x9) x2"));
    }

    #[test]
    fn size_mismatch_names_both_ranks_and_tag() {
        let e = NetsimError::SizeMismatch { rank: 1, source: 0, tag: 5, expected: 8, got: 6 };
        let s = e.to_string();
        assert!(s.contains("rank 1"));
        assert!(s.contains("from rank 0"));
        assert!(s.contains("expected 8"));
        assert!(s.contains("got 6"));
    }

    #[test]
    fn empty_mailbox_hints_at_drop() {
        let e = NetsimError::Timeout { rank: 0, pending: vec![(1, 1)], mailbox: vec![] };
        assert!(e.to_string().contains("dropped or never sent"));
    }

    #[test]
    fn rank_failed_names_victim_detector_and_step() {
        let e = NetsimError::RankFailed { rank: 2, detected_by: 0, step: 5 };
        let s = e.to_string();
        assert!(s.contains("rank 2 failed"));
        assert!(s.contains("step 5"));
        assert!(s.contains("detected by rank 0"));
    }

    #[test]
    fn capped_timeout_dump_says_so() {
        let pending: Vec<(usize, u64)> = (0..MAX_DIAG_KEYS).map(|i| (i, 1)).collect();
        let e = NetsimError::Timeout { rank: 0, pending, mailbox: vec![] };
        assert!(e.to_string().contains("dump capped at 16"));
    }

    #[test]
    fn rank_panicked_reports_rank_and_payload() {
        let e = NetsimError::RankPanicked { rank: 7, payload: "index out of bounds".into() };
        let s = e.to_string();
        assert!(s.contains("rank 7 panicked"));
        assert!(s.contains("index out of bounds"));
    }
}
