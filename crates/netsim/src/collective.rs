//! Minimal collectives over the point-to-point layer: the artifact's
//! per-timestep metrics are reported as `[minimum, average, maximum]`
//! across ranks, which requires a reduction at the end of a run.
//!
//! Collectives are control-plane traffic: their tags carry
//! [`CTRL_TAG_BIT`], so fault injection never drops or corrupts them.
//! A chaos run's final timer reduction must report the damage, not
//! suffer it.

use crate::cluster::RankCtx;
use crate::error::NetsimError;
use crate::fault::CTRL_TAG_BIT;
use crate::timers::Timers;

/// Reserved tag namespace for collectives (fault-exempt control plane).
const COLL_TAG: u64 = CTRL_TAG_BIT | 0xC0_11_00_00;

impl<'a> RankCtx<'a> {
    /// Gather one f64 from every rank to rank 0 (returns `Some(values)`
    /// on rank 0, `None` elsewhere). Collectives use a reserved tag
    /// space and must be called by all ranks.
    pub fn gather_to_root(&mut self, value: f64) -> Result<Option<Vec<f64>>, NetsimError> {
        let size = self.size();
        if self.rank() == 0 {
            let mut out = vec![0.0; size];
            out[0] = value;
            let handles = (1..size)
                .map(|src| self.irecv(src, COLL_TAG))
                .collect::<Result<Vec<_>, _>>()?;
            let mut bufs: Vec<[f64; 1]> = vec![[0.0]; size - 1];
            {
                let mut slices: Vec<&mut [f64]> =
                    bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
                self.waitall_into(&handles, &mut slices)?;
            }
            for (i, b) in bufs.iter().enumerate() {
                out[i + 1] = b[0];
            }
            Ok(Some(out))
        } else {
            self.isend(0, COLL_TAG, &[value])?;
            Ok(None)
        }
    }

    /// All-reduce maximum of one f64 (root gathers, then broadcasts).
    pub fn allreduce_max(&mut self, value: f64) -> Result<f64, NetsimError> {
        let size = self.size();
        if let Some(vals) = self.gather_to_root(value)? {
            let m = vals.into_iter().fold(f64::NEG_INFINITY, f64::max);
            for dst in 1..size {
                self.isend(dst, COLL_TAG + 1, &[m])?;
            }
            Ok(m)
        } else {
            let h = self.irecv(0, COLL_TAG + 1)?;
            let mut buf = [0.0];
            self.waitall_into(&[h], &mut [&mut buf[..]])?;
            Ok(buf[0])
        }
    }

    /// Reduce a full timer set to rank 0 as `(min, avg, max)` per
    /// category — the artifact's reporting format.
    pub fn reduce_timers(&mut self, t: &Timers) -> Result<Option<TimerSummary>, NetsimError> {
        let fields = [t.calc, t.pack, t.call, t.wait];
        let mut mins = [0.0f64; 4];
        let mut avgs = [0.0f64; 4];
        let mut maxs = [0.0f64; 4];
        let mut root = true;
        for (i, &v) in fields.iter().enumerate() {
            match self.gather_to_root(v)? {
                Some(vals) => {
                    let n = vals.len() as f64;
                    mins[i] = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                    maxs[i] = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    avgs[i] = vals.iter().sum::<f64>() / n;
                }
                None => root = false,
            }
        }
        Ok(if root {
            Some(TimerSummary {
                calc: (mins[0], avgs[0], maxs[0]),
                pack: (mins[1], avgs[1], maxs[1]),
                call: (mins[2], avgs[2], maxs[2]),
                wait: (mins[3], avgs[3], maxs[3]),
            })
        } else {
            None
        })
    }
}

/// `(min, avg, max)` of each timer category across ranks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimerSummary {
    /// Computation.
    pub calc: (f64, f64, f64),
    /// Packing.
    pub pack: (f64, f64, f64),
    /// MPI posting.
    pub call: (f64, f64, f64),
    /// MPI completion.
    pub wait: (f64, f64, f64),
}

impl TimerSummary {
    /// Format one category the way the artifact prints it.
    pub fn fmt_category(name: &str, (min, avg, max): (f64, f64, f64)) -> String {
        format!("{name} [{min:.6}, {avg:.6}, {max:.6}] s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, run_cluster_faulty};
    use crate::fault::FaultConfig;
    use crate::model::NetworkModel;
    use crate::topo::CartTopo;

    #[test]
    fn gather_collects_in_rank_order() {
        let topo = CartTopo::new(&[4], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            ctx.gather_to_root((ctx.rank() * 10) as f64).unwrap()
        });
        assert_eq!(out[0], Some(vec![0.0, 10.0, 20.0, 30.0]));
        assert_eq!(out[1], None);
    }

    #[test]
    fn allreduce_max_everywhere() {
        let topo = CartTopo::new(&[5], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            ctx.allreduce_max(if ctx.rank() == 3 { 99.0 } else { ctx.rank() as f64 }).unwrap()
        });
        assert!(out.iter().all(|&v| v == 99.0));
    }

    #[test]
    fn timer_summary_bounds() {
        let topo = CartTopo::new(&[3], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let t = Timers { calc: ctx.rank() as f64 + 1.0, ..Timers::default() };
            ctx.reduce_timers(&t).unwrap()
        });
        let s = out[0].unwrap();
        assert_eq!(s.calc, (1.0, 2.0, 3.0));
        assert_eq!(s.pack, (0.0, 0.0, 0.0));
        assert!(out[1].is_none());
    }

    #[test]
    fn collectives_survive_full_packet_loss() {
        // Control-plane tags carry CTRL_TAG_BIT: even drop=1.0 cannot
        // touch them, so the final reduction of a chaos run is safe.
        let topo = CartTopo::new(&[4], true);
        let cfg = FaultConfig { seed: 11, drop: 1.0, ..FaultConfig::off() };
        let out = run_cluster_faulty(&topo, NetworkModel::instant(), cfg, |ctx| {
            ctx.allreduce_max(ctx.rank() as f64).unwrap()
        });
        assert!(out.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn summary_format() {
        let line = TimerSummary::fmt_category("calc", (0.1, 0.2, 0.3));
        assert!(line.starts_with("calc [0.1"));
    }
}
