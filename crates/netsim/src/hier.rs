//! Two-tier hierarchical wire model: intra-node shared memory vs
//! inter-node fabric.
//!
//! Real clusters are not flat: ranks packed on one node talk through
//! shared memory (sub-µs latency, tens of GB/s), while off-node
//! neighbors cross the fabric. [`HierarchicalNetworkModel`] pairs two
//! [`NetworkModel`] tiers with a [`NodeShape`] (how many consecutive
//! ranks share a node) and every message is charged by whether its
//! endpoints share a node. A flat [`NetworkModel`] converts losslessly
//! (`From`) into the 1-rank-per-node degenerate case, whose billing is
//! *bit-identical* to the flat code path — the hierarchical machinery
//! only engages when `ranks_per_node > 1` or the tiers differ.
//!
//! The presets mirror the machines the artifact models: `dragonfly`
//! puts the Aries fabric (Theta) behind the node boundary, `fat-tree`
//! the EDR InfiniBand fabric (Summit); both share the same
//! shared-memory intra tier.

use crate::model::NetworkModel;

/// How consecutive ranks are packed onto nodes: ranks `[k·r, (k+1)·r)`
/// live on node `k` for `r = ranks_per_node`.
///
/// This is the *physical* grouping; a mapping policy permutes which
/// logical (cartesian) rank lands in which physical slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeShape {
    ranks_per_node: usize,
}

impl NodeShape {
    /// Grouping with `ranks_per_node` consecutive ranks per node.
    ///
    /// Panics if `ranks_per_node` is zero; use [`NodeShape::try_new`]
    /// for a structured error.
    pub fn new(ranks_per_node: usize) -> NodeShape {
        NodeShape::try_new(ranks_per_node).expect("ranks_per_node must be positive")
    }

    /// Fallible [`NodeShape::new`].
    pub fn try_new(ranks_per_node: usize) -> Option<NodeShape> {
        if ranks_per_node == 0 {
            return None;
        }
        Some(NodeShape { ranks_per_node })
    }

    /// One rank per node — the degenerate grouping of a flat fabric.
    pub fn single() -> NodeShape {
        NodeShape { ranks_per_node: 1 }
    }

    /// Ranks sharing each node.
    #[inline]
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Node index holding `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Whether two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Nodes needed to host `ranks` ranks.
    pub fn nodes(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.ranks_per_node)
    }
}

impl Default for NodeShape {
    fn default() -> NodeShape {
        NodeShape::single()
    }
}

/// Two-tier wire model: messages between ranks on the same node are
/// charged to `intra`, everything else to `inter`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HierarchicalNetworkModel {
    /// Human-readable topology name (`"flat"`, `"dragonfly"`, …).
    pub name: &'static str,
    /// Shared-memory tier for on-node messages.
    pub intra: NetworkModel,
    /// Fabric tier for off-node messages.
    pub inter: NetworkModel,
    /// Rank-to-node grouping.
    pub node: NodeShape,
}

impl HierarchicalNetworkModel {
    /// The degenerate hierarchy equivalent to a flat `model`: one rank
    /// per node, both tiers identical. Billing through this value is
    /// bit-identical to billing through `model` directly.
    pub fn flat(model: NetworkModel) -> HierarchicalNetworkModel {
        HierarchicalNetworkModel {
            name: model.name,
            intra: model,
            inter: model,
            node: NodeShape::single(),
        }
    }

    /// The shared-memory intra-node tier used by every preset: cache-
    /// coherent copies, so negligible injection gap, ~50 GB/s streaming
    /// bandwidth, and ~0.12 µs one-way latency.
    pub fn shared_memory() -> NetworkModel {
        NetworkModel {
            name: "shm",
            overhead: 0.20e-6,
            latency: 0.12e-6,
            gap: 0.02e-6,
            bandwidth: 48.0e9,
        }
    }

    /// Dragonfly topology (Theta-like): Aries fabric between nodes,
    /// shared memory within, `ranks_per_node` ranks per node.
    pub fn dragonfly(ranks_per_node: usize) -> HierarchicalNetworkModel {
        HierarchicalNetworkModel {
            name: "dragonfly",
            intra: HierarchicalNetworkModel::shared_memory(),
            inter: NetworkModel::theta_aries(),
            node: NodeShape::new(ranks_per_node),
        }
    }

    /// Fat-tree topology (Summit-like): EDR InfiniBand between nodes,
    /// shared memory within, `ranks_per_node` ranks per node.
    pub fn fat_tree(ranks_per_node: usize) -> HierarchicalNetworkModel {
        HierarchicalNetworkModel {
            name: "fat-tree",
            intra: HierarchicalNetworkModel::shared_memory(),
            inter: NetworkModel::summit_edr(),
            node: NodeShape::new(ranks_per_node),
        }
    }

    /// Whether this hierarchy degenerates to a flat fabric (billing is
    /// then routed through the unmodified flat code path).
    pub fn is_flat(&self) -> bool {
        self.node.ranks_per_node() == 1 && self.intra == self.inter
    }

    /// The tier charged for a message between `a` and `b`.
    #[inline]
    pub fn tier(&self, a: usize, b: usize) -> &NetworkModel {
        if self.node.same_node(a, b) {
            &self.intra
        } else {
            &self.inter
        }
    }

    /// Both tiers slowed by `factor` (≥ 1) — per-rank fault jitter
    /// stretches a straggler's NIC *and* its memory subsystem.
    pub fn slowed(&self, factor: f64) -> HierarchicalNetworkModel {
        HierarchicalNetworkModel {
            name: self.name,
            intra: self.intra.slowed(factor),
            inter: self.inter.slowed(factor),
            node: self.node,
        }
    }
}

impl From<NetworkModel> for HierarchicalNetworkModel {
    fn from(model: NetworkModel) -> HierarchicalNetworkModel {
        HierarchicalNetworkModel::flat(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_shape_groups_consecutive_ranks() {
        let n = NodeShape::new(4);
        assert_eq!(n.node_of(0), 0);
        assert_eq!(n.node_of(3), 0);
        assert_eq!(n.node_of(4), 1);
        assert!(n.same_node(5, 7));
        assert!(!n.same_node(3, 4));
        assert_eq!(n.nodes(9), 3);
        assert_eq!(NodeShape::try_new(0), None);
    }

    #[test]
    fn flat_conversion_is_degenerate() {
        let m = NetworkModel::theta_aries();
        let h: HierarchicalNetworkModel = m.into();
        assert!(h.is_flat());
        assert_eq!(h.inter, m);
        assert_eq!(h.intra, m);
        assert_eq!(h.node.ranks_per_node(), 1);
        // Every pair is off-node under the degenerate grouping, and the
        // tier charged is exactly the flat model.
        assert_eq!(*h.tier(0, 1), m);
        assert_eq!(*h.tier(7, 7), m);
    }

    #[test]
    fn presets_put_the_fabric_between_nodes() {
        let d = HierarchicalNetworkModel::dragonfly(8);
        assert!(!d.is_flat());
        assert_eq!(d.inter, NetworkModel::theta_aries());
        assert_eq!(*d.tier(0, 7), d.intra, "ranks 0..8 share node 0");
        assert_eq!(*d.tier(7, 8), d.inter, "rank 8 is on the next node");
        assert!(d.intra.latency < d.inter.latency);
        assert!(d.intra.bandwidth > d.inter.bandwidth);

        let f = HierarchicalNetworkModel::fat_tree(16);
        assert_eq!(f.inter, NetworkModel::summit_edr());
        assert_eq!(f.node.ranks_per_node(), 16);
    }

    #[test]
    fn slowed_stretches_both_tiers() {
        let d = HierarchicalNetworkModel::dragonfly(4);
        let s = d.slowed(2.0);
        assert_eq!(s.intra, d.intra.slowed(2.0));
        assert_eq!(s.inter, d.inter.slowed(2.0));
        assert_eq!(s.node, d.node);
    }
}
