//! Seeded, deterministic fault injection for the simulated fabric.
//!
//! A [`FaultConfig`] names a `u64` seed plus per-fault probabilities;
//! each rank derives a [`FaultPlan`] from it and consults the plan at
//! every `isend`. Faults are decided by hashing
//! `(seed, rank, dest, tag, attempt)` with a splitmix64 chain, so the
//! schedule is a pure function of the seed and the (deterministic)
//! send sequence: replaying a run with the same seed injects exactly
//! the same drops, duplicates, corruptions and delays — which is what
//! makes chaos tests reproducible and shrinkable.
//!
//! The fault taxonomy mirrors what a real fabric does between NIC and
//! NIC:
//!
//! * **drop** — the message never arrives;
//! * **duplicate** — the message arrives twice;
//! * **corrupt** — one payload word is bit-flipped in flight;
//! * **delay** — the message arrives, but extra modeled latency is
//!   charged (congestion);
//! * **slowdown/jitter** — a per-rank multiplicative factor on the wire
//!   model (a straggler NIC), applied via
//!   [`crate::model::NetworkModel::slowed`].
//!
//! Control-plane traffic (tags carrying [`CTRL_TAG_BIT`]) and loopback
//! copies are exempt: recovery protocols need a reliable ack channel,
//! exactly like the transport-level credit/ack messaging real NICs
//! keep out of band.

/// Tag bit marking reliable control-plane messages, which are never
/// fault-injected (retry protocols use them to re-request lost data).
pub const CTRL_TAG_BIT: u64 = 1 << 62;

/// One scheduled process-level fault: a crash-stop kill or a fail-slow
/// stall, pinned to a deterministic point in the run — the `op`-th
/// data-plane transport operation rank `rank` performs inside timestep
/// `step`. Counting transport operations (sends, receive posts, waits)
/// instead of wall-clock time keeps process faults exactly replayable
/// on both execution backends, and lets a schedule land mid-overlap
/// window or between two `pready` calls.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProcFault {
    /// The rank that fails.
    pub rank: usize,
    /// The timestep (driver-defined, counted from 0 incl. warmup) the
    /// fault fires in.
    pub step: u64,
    /// Data-plane transport operations to let pass within the step
    /// before firing (0 = fire on the first operation).
    pub op: u64,
    /// Fail-slow only: modeled seconds of stall billed to the rank's
    /// wait timer. Zero for a crash-stop kill.
    pub stall_secs: f64,
}

impl ProcFault {
    fn parse_at(name: &str, at: &str) -> Result<ProcFault, String> {
        let (rank, rest) = at
            .split_once('@')
            .ok_or_else(|| format!("--faults {name} spec must be RANK@STEP[+OP]"))?;
        let rank = rank.parse::<usize>().map_err(|e| format!("--faults {name} rank: {e}"))?;
        let (step, op) = match rest.split_once('+') {
            Some((s, o)) => (
                s.parse::<u64>().map_err(|e| format!("--faults {name} step: {e}"))?,
                o.parse::<u64>().map_err(|e| format!("--faults {name} op: {e}"))?,
            ),
            None => (rest.parse::<u64>().map_err(|e| format!("--faults {name} step: {e}"))?, 0),
        };
        Ok(ProcFault { rank, step, op, stall_secs: 0.0 })
    }
}

/// Fault probabilities plus the seed that makes them deterministic.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-message hash chain.
    pub seed: u64,
    /// P(message dropped).
    pub drop: f64,
    /// P(one payload word bit-flipped).
    pub corrupt: f64,
    /// P(message delivered twice).
    pub dup: f64,
    /// P(extra modeled latency charged).
    pub delay: f64,
    /// Per-rank wire slowdown spread: each rank's model is scaled by a
    /// factor in `[1, 1 + jitter]` drawn from the seed.
    pub jitter: f64,
    /// Crash-stop process fault: the named rank dies at the scheduled
    /// point. In-flight messages to and from it vanish; survivors
    /// observe [`crate::NetsimError::RankFailed`] instead of a hang.
    pub kill: Option<ProcFault>,
    /// Fail-slow process fault: the named rank bills `stall_secs` of
    /// modeled wait time at the scheduled point, once.
    pub stall: Option<ProcFault>,
}

impl FaultConfig {
    /// A fault-free configuration (the default).
    pub fn off() -> FaultConfig {
        FaultConfig::default()
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
            || self.corrupt > 0.0
            || self.dup > 0.0
            || self.delay > 0.0
            || self.jitter > 0.0
            || self.proc_active()
    }

    /// Whether a process-level fault (kill or stall) is scheduled.
    pub fn proc_active(&self) -> bool {
        self.kill.is_some() || self.stall.is_some()
    }

    /// Whether data can be lost or damaged in flight. Delay and jitter
    /// only stretch modeled time — every payload still arrives intact —
    /// so exchange engines only need the reliable retry protocol when
    /// this is true.
    pub fn lossy(&self) -> bool {
        self.drop > 0.0 || self.corrupt > 0.0 || self.dup > 0.0
    }

    /// Parse the CLI form `seed[,drop[,corrupt[,dup[,delay[,jitter]]]]]`,
    /// e.g. `--faults 42,0.1,0.05`. Process-fault tokens may appear
    /// anywhere in the comma list: `kill:RANK@STEP[+OP]` schedules a
    /// crash-stop kill and `stall:RANK@STEP[+OP]:SECS` a fail-slow
    /// stall (`+OP` pins the data-plane transport operation within the
    /// step; default 0, the step's first). A spec of only process
    /// faults needs no seed: `--faults kill:1@3`.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        if spec.is_empty() {
            return Err("--faults needs at least a seed or a kill:/stall: spec".into());
        }
        let mut cfg = FaultConfig::default();
        let mut positional: Vec<&str> = Vec::new();
        for tok in spec.split(',') {
            if let Some(at) = tok.strip_prefix("kill:") {
                if cfg.kill.is_some() {
                    return Err("--faults takes at most one kill: spec".into());
                }
                cfg.kill = Some(ProcFault::parse_at("kill", at)?);
            } else if let Some(body) = tok.strip_prefix("stall:") {
                if cfg.stall.is_some() {
                    return Err("--faults takes at most one stall: spec".into());
                }
                let (at, secs) = body
                    .rsplit_once(':')
                    .ok_or("--faults stall spec must be RANK@STEP[+OP]:SECS")?;
                let mut st = ProcFault::parse_at("stall", at)?;
                st.stall_secs =
                    secs.parse::<f64>().map_err(|e| format!("--faults stall secs: {e}"))?;
                if !st.stall_secs.is_finite() || st.stall_secs <= 0.0 {
                    return Err("--faults stall secs must be positive".into());
                }
                cfg.stall = Some(st);
            } else {
                positional.push(tok);
            }
        }
        let mut parts = positional.into_iter();
        match parts.next() {
            Some(s) if !s.is_empty() => {
                cfg.seed = s.parse::<u64>().map_err(|e| format!("--faults seed: {e}"))?;
            }
            // `kill:`/`stall:`-only specs carry no seed token.
            None | Some("") if cfg.proc_active() => {}
            _ => return Err("--faults needs at least a seed or a kill:/stall: spec".into()),
        }
        let fields: [(&str, &mut f64); 5] = [
            ("drop", &mut cfg.drop),
            ("corrupt", &mut cfg.corrupt),
            ("dup", &mut cfg.dup),
            ("delay", &mut cfg.delay),
            ("jitter", &mut cfg.jitter),
        ];
        for (name, slot) in fields {
            match parts.next() {
                None => break,
                Some(v) => {
                    let p = v.parse::<f64>().map_err(|e| format!("--faults {name}: {e}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("--faults {name} must be in [0, 1], got {p}"));
                    }
                    *slot = p;
                }
            }
        }
        if parts.next().is_some() {
            return Err("--faults takes at most seed,drop,corrupt,dup,delay,jitter".into());
        }
        Ok(cfg)
    }
}

/// The kind of an injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Message silently discarded.
    Drop,
    /// One payload word bit-flipped.
    Corrupt,
    /// Message delivered twice.
    Duplicate,
    /// Extra modeled latency charged to the sender's wait timer.
    Delay,
    /// Crash-stop process fault: the rank died. `src` and `dest` name
    /// the victim, `tag` the timestep, `attempt` the operation index.
    Kill,
    /// Fail-slow process fault: the rank stalled for modeled seconds.
    Stall,
}

impl FaultKind {
    /// Stable lowercase name (used in the JSON trace dump).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Delay => "delay",
            FaultKind::Kill => "kill",
            FaultKind::Stall => "stall",
        }
    }
}

/// One injected fault, recorded in the [`crate::trace::Trace`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// What was injected.
    pub kind: FaultKind,
    /// Sending rank.
    pub src: usize,
    /// Destination rank.
    pub dest: usize,
    /// Message tag.
    pub tag: u64,
    /// The sender's monotone send-attempt counter when the fault fired.
    pub attempt: u64,
    /// Payload bytes of the affected message.
    pub bytes: usize,
}

/// Per-rank running totals of injected faults (always maintained,
/// independent of whether the event trace is enabled).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped.
    pub drops: u64,
    /// Messages corrupted.
    pub corrupts: u64,
    /// Messages duplicated.
    pub dups: u64,
    /// Messages delayed.
    pub delays: u64,
}

impl FaultStats {
    /// Total injected faults.
    pub fn total(&self) -> u64 {
        self.drops + self.corrupts + self.dups + self.delays
    }

    /// Accumulate another rank's totals.
    pub fn merge(&mut self, o: &FaultStats) {
        self.drops += o.drops;
        self.corrupts += o.corrupts;
        self.dups += o.dups;
        self.delays += o.delays;
    }
}

/// What the plan decided for one concrete send.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultDecision {
    /// Discard instead of delivering.
    pub drop: bool,
    /// Deliver twice.
    pub dup: bool,
    /// `(word index, xor mask)` to flip in the delivered payload.
    pub corrupt: Option<(usize, u64)>,
    /// Extra modeled seconds of latency to charge.
    pub delay_secs: f64,
    /// The attempt counter this decision was drawn at.
    pub attempt: u64,
}

impl FaultDecision {
    /// Whether any fault fired.
    pub fn any(&self) -> bool {
        self.drop || self.dup || self.corrupt.is_some() || self.delay_secs > 0.0
    }
}

/// One rank's deterministic fault schedule.
///
/// The plan keeps a monotone per-rank attempt counter; every decision
/// is `hash(seed, rank, dest, tag, attempt, salt)`, so resends of the
/// same `(dest, tag)` draw fresh rolls (retries eventually get
/// through) while a replay of the whole run reproduces the schedule
/// bit for bit.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rank: usize,
    attempt: u64,
    stats: FaultStats,
    slowdown: f64,
}

// Distinct salts per fault kind so the rolls are independent.
const SALT_DROP: u64 = 0xD709;
const SALT_CORRUPT: u64 = 0xC0FF;
const SALT_CORRUPT_WORD: u64 = 0xC0FE;
const SALT_DUP: u64 = 0xD0BB;
const SALT_DELAY: u64 = 0xDE1A;
const SALT_DELAY_MAG: u64 = 0xDE1B;
const SALT_SLOWDOWN: u64 = 0x510;

impl FaultPlan {
    /// Derive rank `rank`'s plan from a shared configuration.
    pub fn new(cfg: FaultConfig, rank: usize) -> FaultPlan {
        let slowdown = if cfg.jitter > 0.0 {
            1.0 + cfg.jitter * u01(mix3(cfg.seed, rank as u64, SALT_SLOWDOWN))
        } else {
            1.0
        };
        FaultPlan { cfg, rank, attempt: 0, stats: FaultStats::default(), slowdown }
    }

    /// The configuration this plan was derived from.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// This rank's wire slowdown factor in `[1, 1 + jitter]`.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Injection totals so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// This rank's scheduled crash-stop kill, if any.
    pub fn kill(&self) -> Option<ProcFault> {
        self.cfg.kill.filter(|k| k.rank == self.rank)
    }

    /// This rank's scheduled fail-slow stall, if any.
    pub fn stall(&self) -> Option<ProcFault> {
        self.cfg.stall.filter(|s| s.rank == self.rank)
    }

    /// Decide the fate of one outgoing message. Control-plane tags
    /// (carrying [`CTRL_TAG_BIT`]) are exempt and do not advance the
    /// attempt counter, so the data-message fault schedule is identical
    /// across protocol variants that send the same data messages but
    /// different amounts of control traffic.
    pub fn decide(&mut self, dest: usize, tag: u64, payload_words: usize) -> FaultDecision {
        if tag & CTRL_TAG_BIT != 0 {
            return FaultDecision::default();
        }
        let attempt = self.attempt;
        self.attempt += 1;
        let base = mix3(self.cfg.seed, self.rank as u64, dest as u64)
            ^ mix3(tag, attempt, 0x9E37_79B9);
        let roll = |salt: u64| u01(splitmix64(base ^ splitmix64(salt)));
        let mut d = FaultDecision { attempt, ..FaultDecision::default() };
        if roll(SALT_DROP) < self.cfg.drop {
            d.drop = true;
            self.stats.drops += 1;
            // A dropped message can't also be duplicated or corrupted.
            return d;
        }
        if payload_words > 0 && roll(SALT_CORRUPT) < self.cfg.corrupt {
            let h = splitmix64(base ^ splitmix64(SALT_CORRUPT_WORD));
            let word = (h as usize) % payload_words;
            // Guaranteed-nonzero mask: always flips at least one bit.
            let mask = h | 1;
            d.corrupt = Some((word, mask));
            self.stats.corrupts += 1;
        }
        if roll(SALT_DUP) < self.cfg.dup {
            d.dup = true;
            self.stats.dups += 1;
        }
        if roll(SALT_DELAY) < self.cfg.delay {
            // 1x–10x the base latency of a theta-class fabric; purely
            // modeled time, scaled below by the caller's network model.
            let mag = 1.0 + 9.0 * u01(splitmix64(base ^ splitmix64(SALT_DELAY_MAG)));
            d.delay_secs = mag * 1.5e-6;
            self.stats.delays += 1;
        }
        d
    }
}

/// FNV-1a over the payload bytes, then bound to `(tag, seq)` — the
/// per-message checksum the reliable exchange appends to its frames.
pub fn frame_checksum(payload: &[f64], tag: u64, seq: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET;
    for w in payload {
        for b in w.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h ^ splitmix64(tag) ^ splitmix64(seq.wrapping_add(0x5EED))
}

/// splitmix64 — the standard 64-bit finalizer chain (public domain
/// constants), strong enough to decorrelate the per-message rolls.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(a) ^ b) ^ c)
}

/// Map a hash to `[0, 1)`.
fn u01(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_and_partial() {
        let c = FaultConfig::parse("42,0.1,0.05,0.02,0.3,0.2").unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(c.drop, 0.1);
        assert_eq!(c.corrupt, 0.05);
        assert_eq!(c.dup, 0.02);
        assert_eq!(c.delay, 0.3);
        assert_eq!(c.jitter, 0.2);
        let c = FaultConfig::parse("7,0.25").unwrap();
        assert_eq!((c.seed, c.drop, c.corrupt), (7, 0.25, 0.0));
        let c = FaultConfig::parse("9").unwrap();
        assert!(!c.is_active());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultConfig::parse("").is_err());
        assert!(FaultConfig::parse("x").is_err());
        assert!(FaultConfig::parse("1,2.0").is_err());
        assert!(FaultConfig::parse("1,0.1,0.1,0.1,0.1,0.1,0.1").is_err());
        assert!(FaultConfig::parse("1,-0.5").is_err());
    }

    #[test]
    fn parse_process_faults() {
        let c = FaultConfig::parse("kill:1@3").unwrap();
        assert_eq!(c.kill, Some(ProcFault { rank: 1, step: 3, op: 0, stall_secs: 0.0 }));
        assert!(c.is_active() && c.proc_active() && !c.lossy());
        assert_eq!(c.seed, 0);

        let c = FaultConfig::parse("42,0.1,kill:2@5+7").unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(c.drop, 0.1);
        assert_eq!(c.kill, Some(ProcFault { rank: 2, step: 5, op: 7, stall_secs: 0.0 }));

        let c = FaultConfig::parse("stall:0@2+1:0.5").unwrap();
        let st = c.stall.unwrap();
        assert_eq!((st.rank, st.step, st.op), (0, 2, 1));
        assert_eq!(st.stall_secs, 0.5);
        assert!(!c.lossy(), "stall must stay data-safe");

        assert!(FaultConfig::parse("kill:1").is_err());
        assert!(FaultConfig::parse("kill:x@3").is_err());
        assert!(FaultConfig::parse("stall:1@3").is_err());
        assert!(FaultConfig::parse("stall:1@3:0").is_err());
        assert!(FaultConfig::parse("kill:1@2,kill:2@2").is_err());
    }

    #[test]
    fn proc_faults_bind_to_their_rank() {
        let cfg = FaultConfig {
            kill: Some(ProcFault { rank: 2, step: 1, op: 0, stall_secs: 0.0 }),
            stall: Some(ProcFault { rank: 3, step: 1, op: 0, stall_secs: 0.1 }),
            ..FaultConfig::off()
        };
        assert!(FaultPlan::new(cfg, 2).kill().is_some());
        assert!(FaultPlan::new(cfg, 0).kill().is_none());
        assert!(FaultPlan::new(cfg, 3).stall().is_some());
        assert!(FaultPlan::new(cfg, 2).stall().is_none());
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig { seed: 99, drop: 0.3, corrupt: 0.2, dup: 0.2, delay: 0.2, ..FaultConfig::off() };
        let mut a = FaultPlan::new(cfg, 1);
        let mut b = FaultPlan::new(cfg, 1);
        for i in 0..200 {
            let tag = (i % 7) as u64;
            assert_eq!(a.decide(2, tag, 64), b.decide(2, tag, 64));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let cfg = FaultConfig { seed, drop: 0.5, ..FaultConfig::off() };
            let mut p = FaultPlan::new(cfg, 0);
            (0..64).map(|i| p.decide(1, i, 8).drop).collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn retries_draw_fresh_rolls() {
        // Same (dest, tag) resent repeatedly must not be dropped forever.
        let cfg = FaultConfig { seed: 5, drop: 0.5, ..FaultConfig::off() };
        let mut p = FaultPlan::new(cfg, 0);
        let outcomes: Vec<bool> = (0..32).map(|_| p.decide(1, 7, 8).drop).collect();
        assert!(outcomes.iter().any(|&d| d));
        assert!(outcomes.iter().any(|&d| !d));
    }

    #[test]
    fn rates_are_roughly_honored() {
        let cfg = FaultConfig { seed: 123, drop: 0.2, ..FaultConfig::off() };
        let mut p = FaultPlan::new(cfg, 3);
        let n = 5000;
        let drops = (0..n).filter(|&i| p.decide(0, i, 16).drop).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn control_tags_are_exempt() {
        let cfg = FaultConfig { seed: 1, drop: 1.0, corrupt: 1.0, dup: 1.0, delay: 1.0, ..FaultConfig::off() };
        let mut p = FaultPlan::new(cfg, 0);
        let d = p.decide(1, CTRL_TAG_BIT | 5, 8);
        assert!(!d.any());
        // Data tags under the same config always fault.
        assert!(p.decide(1, 5, 8).any());
    }

    #[test]
    fn jitter_bounds_slowdown() {
        let cfg = FaultConfig { seed: 11, jitter: 0.25, ..FaultConfig::off() };
        for rank in 0..16 {
            let s = FaultPlan::new(cfg, rank).slowdown();
            assert!((1.0..1.25).contains(&s), "slowdown {s}");
        }
        let off = FaultPlan::new(FaultConfig::off(), 0);
        assert_eq!(off.slowdown(), 1.0);
    }

    #[test]
    fn corrupt_mask_is_nonzero_and_in_bounds() {
        let cfg = FaultConfig { seed: 2, corrupt: 1.0, ..FaultConfig::off() };
        let mut p = FaultPlan::new(cfg, 0);
        for i in 0..100 {
            let d = p.decide(1, i, 13);
            let (w, m) = d.corrupt.expect("corrupt probability 1");
            assert!(w < 13);
            assert_ne!(m, 0);
        }
    }

    #[test]
    fn checksum_detects_single_word_flip() {
        let payload: Vec<f64> = (0..32).map(|i| i as f64 * 0.5).collect();
        let h = frame_checksum(&payload, 9, 0);
        let mut bad = payload.clone();
        bad[7] = f64::from_bits(bad[7].to_bits() ^ 0x1);
        assert_ne!(h, frame_checksum(&bad, 9, 0));
        assert_ne!(h, frame_checksum(&payload, 10, 0), "tag-bound");
        assert_ne!(h, frame_checksum(&payload, 9, 1), "seq-bound");
        assert_eq!(h, frame_checksum(&payload, 9, 0));
    }
}
