//! Thread-per-rank cluster with MPI-style nonblocking point-to-point.
//!
//! Data really moves between rank memories (one copy, standing in for
//! NIC DMA and therefore not charged to any on-node timer); completion
//! *times* come from the [`NetworkModel`]. Message matching follows MPI
//! semantics: `(source, tag)` with non-overtaking order per pair.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Barrier;

use parking_lot::{Condvar, Mutex};

use crate::model::NetworkModel;
use crate::timers::{timed, Timers};
use crate::topo::CartTopo;
use crate::trace::{MsgEvent, Trace};

type Key = (usize, u64); // (source rank, tag)

#[derive(Default)]
struct MailboxInner {
    queues: HashMap<Key, VecDeque<Vec<f64>>>,
}

/// One rank's incoming-message store.
struct Mailbox {
    inner: Mutex<MailboxInner>,
    signal: Condvar,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox { inner: Mutex::new(MailboxInner::default()), signal: Condvar::new() }
    }

    fn push(&self, key: Key, data: Vec<f64>) {
        let mut g = self.inner.lock();
        g.queues.entry(key).or_default().push_back(data);
        self.signal.notify_all();
    }

    fn pop_blocking(&self, key: Key) -> Vec<f64> {
        let mut g = self.inner.lock();
        loop {
            if let Some(q) = g.queues.get_mut(&key) {
                if let Some(v) = q.pop_front() {
                    return v;
                }
            }
            self.signal.wait(&mut g);
        }
    }
}

/// A posted nonblocking receive; completed by
/// [`RankCtx::waitall_into`].
#[derive(Clone, Copy, Debug)]
pub struct RecvHandle {
    source: usize,
    tag: u64,
}

/// Per-rank execution context handed to the rank body.
pub struct RankCtx<'a> {
    rank: usize,
    topo: &'a CartTopo,
    net: NetworkModel,
    mailboxes: &'a [Mailbox],
    barrier: &'a Barrier,
    timers: Timers,
    trace: Trace,
    // Sends posted since the last waitall (the current epoch).
    epoch_msgs: usize,
    epoch_bytes: usize,
}

impl<'a> RankCtx<'a> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.topo.size()
    }

    /// The Cartesian topology.
    pub fn topo(&self) -> &CartTopo {
        self.topo
    }

    /// The wire model in use.
    pub fn network(&self) -> NetworkModel {
        self.net
    }

    /// Run and *really time* a computation phase.
    pub fn time_calc<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.timers.calc += t;
        r
    }

    /// Run and *really time* a packing/unpacking phase.
    pub fn time_pack<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.timers.pack += t;
        r
    }

    /// Run and *really time* work that happens inside the MPI library
    /// (e.g. a derived-datatype pack walk), charged to `call`.
    pub fn time_call<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.timers.call += t;
        r
    }

    /// Charge additional modeled seconds to `call`.
    pub fn charge_call(&mut self, secs: f64) {
        self.timers.call += secs;
    }

    /// Post a nonblocking send of `data` to rank `dest` with `tag`.
    /// Charges `o` seconds of `call` time; the copy into the message
    /// stands in for NIC DMA and is not charged to any on-node timer.
    pub fn isend(&mut self, dest: usize, tag: u64, data: &[f64]) {
        assert!(dest < self.topo.size());
        self.timers.call += self.net.call_time(1);
        self.timers.msgs += 1;
        let bytes = std::mem::size_of_val(data);
        self.timers.wire_bytes += bytes as u64;
        self.epoch_msgs += 1;
        self.epoch_bytes += bytes;
        self.trace.record(MsgEvent { send: true, peer: dest, tag, bytes });
        self.mailboxes[dest].push((self.rank, tag), data.to_vec());
    }

    /// Post a nonblocking receive from `source` with `tag`. Charges `o`
    /// seconds of `call` time.
    pub fn irecv(&mut self, source: usize, tag: u64) -> RecvHandle {
        assert!(source < self.topo.size());
        self.timers.call += self.net.call_time(1);
        RecvHandle { source, tag }
    }

    /// Complete all posted receives, copying each message into its
    /// destination buffer (buffers parallel to `handles`; lengths must
    /// match exactly). Charges the LogGP `wait` term for this epoch's
    /// posted sends, then closes the epoch.
    pub fn waitall_into(&mut self, handles: &[RecvHandle], bufs: &mut [&mut [f64]]) {
        assert_eq!(handles.len(), bufs.len());
        for (h, buf) in handles.iter().zip(bufs.iter_mut()) {
            let msg = self.mailboxes[self.rank].pop_blocking((h.source, h.tag));
            assert_eq!(
                msg.len(),
                buf.len(),
                "message length mismatch (source {}, tag {})",
                h.source,
                h.tag
            );
            buf.copy_from_slice(&msg);
            self.trace.record(MsgEvent {
                send: false,
                peer: h.source,
                tag: h.tag,
                bytes: msg.len() * 8,
            });
        }
        self.timers.wait += self.net.wait_time(self.epoch_msgs, self.epoch_bytes);
        self.epoch_msgs = 0;
        self.epoch_bytes = 0;
    }

    /// Record payload bytes (the non-padding fraction of the wire bytes)
    /// for bandwidth accounting.
    pub fn note_payload(&mut self, bytes: usize) {
        self.timers.payload_bytes += bytes as u64;
    }

    /// Charge additional modeled seconds to `wait` (used by the GPU
    /// paths to account for staging or page migration on the wire side).
    pub fn charge_wait(&mut self, secs: f64) {
        self.timers.wait += secs;
    }

    /// Charge additional *modeled* seconds to `calc` (used by the GPU
    /// roofline, whose kernels run on the host but are billed as device
    /// time).
    pub fn charge_calc(&mut self, secs: f64) {
        self.timers.calc += secs;
    }

    /// Charge additional modeled seconds to `pack`.
    pub fn charge_pack(&mut self, secs: f64) {
        self.timers.pack += secs;
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Snapshot of the accumulated timers.
    pub fn timers(&self) -> Timers {
        self.timers
    }

    /// Zero the timers (e.g. after warmup steps).
    pub fn reset_timers(&mut self) {
        self.timers.reset();
    }

    /// Start recording a message trace (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    /// Drain the recorded message events.
    pub fn take_trace(&mut self) -> Vec<MsgEvent> {
        self.trace.take()
    }
}

/// Run `body` once per rank of `topo` on its own OS thread and collect
/// the per-rank results in rank order.
pub fn run_cluster<R, F>(topo: &CartTopo, net: NetworkModel, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx<'_>) -> R + Sync,
{
    let size = topo.size();
    let mailboxes: Vec<Mailbox> = (0..size).map(|_| Mailbox::new()).collect();
    let barrier = Barrier::new(size);
    let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();

    std::thread::scope(|s| {
        let mut joins = Vec::with_capacity(size);
        for (rank, slot) in results.iter_mut().enumerate() {
            let mailboxes = &mailboxes;
            let barrier = &barrier;
            let body = &body;
            joins.push(s.spawn(move || {
                let mut ctx = RankCtx {
                    rank,
                    topo,
                    net,
                    mailboxes,
                    barrier,
                    timers: Timers::default(),
                    trace: Trace::default(),
                    epoch_msgs: 0,
                    epoch_bytes: 0,
                };
                *slot = Some(body(&mut ctx));
            }));
        }
        for j in joins {
            j.join().expect("rank thread panicked");
        }
    });

    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange_delivers() {
        let topo = CartTopo::new(&[4], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let rank = ctx.rank();
            let right = ctx.topo().neighbor(rank, &[1]).unwrap();
            let left = ctx.topo().neighbor(rank, &[-1]).unwrap();
            let data = vec![rank as f64; 8];
            let h = ctx.irecv(left, 7);
            ctx.isend(right, 7, &data);
            let mut buf = [0.0; 8];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]);
            buf[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn self_send_loopback() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let h = ctx.irecv(0, 1);
            ctx.isend(0, 1, &[5.0, 6.0]);
            let mut buf = vec![0.0; 2];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]);
            buf
        });
        assert_eq!(out[0], vec![5.0, 6.0]);
    }

    #[test]
    fn non_overtaking_order() {
        let topo = CartTopo::new(&[2], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(1, 3, &[1.0]);
                ctx.isend(1, 3, &[2.0]);
                ctx.isend(1, 3, &[3.0]);
                Vec::new()
            } else {
                let hs = [ctx.irecv(0, 3), ctx.irecv(0, 3), ctx.irecv(0, 3)];
                let (mut a, mut b, mut c) = ([0.0], [0.0], [0.0]);
                ctx.waitall_into(&hs, &mut [&mut a, &mut b, &mut c]);
                vec![a[0], b[0], c[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn timers_account_wire_model() {
        let topo = CartTopo::new(&[2], true);
        let net = NetworkModel::theta_aries();
        let out = run_cluster(&topo, net, |ctx| {
            let peer = 1 - ctx.rank();
            let h = ctx.irecv(peer, 0);
            ctx.isend(peer, 0, &vec![0.0; 1024]);
            let mut buf = vec![0.0; 1024];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]);
            ctx.timers()
        });
        let t = out[0];
        assert_eq!(t.msgs, 1);
        assert_eq!(t.wire_bytes, 8192);
        // call = 2 posts (send + recv), wait = α + bytes/β.
        assert!((t.call - 2.0 * net.overhead).abs() < 1e-12);
        assert!((t.wait - net.wait_time(1, 8192)).abs() < 1e-12);
    }

    #[test]
    fn timed_phases_accumulate() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            ctx.time_calc(|| std::hint::black_box((0..10000).sum::<u64>()));
            ctx.time_pack(|| std::hint::black_box(vec![0u8; 4096]));
            ctx.timers()
        });
        assert!(out[0].calc > 0.0);
        assert!(out[0].pack > 0.0);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let topo = CartTopo::new(&[4], true);
        let counter = AtomicUsize::new(0);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn mismatched_recv_length_panics() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let h = ctx.irecv(0, 0);
            ctx.isend(0, 0, &[1.0, 2.0]);
            let mut buf = [0.0; 3];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]);
        });
    }
}
