//! Thread-per-rank cluster with MPI-style nonblocking point-to-point.
//!
//! Data really moves between rank memories (one copy, standing in for
//! NIC DMA and therefore not charged to any on-node timer); completion
//! *times* come from the [`NetworkModel`]. Message matching follows MPI
//! semantics: `(source, tag)` with non-overtaking order per pair.
//!
//! The transport is persistent and allocation-free in steady state:
//! message buffers come from a per-rank [`BufferPool`] and are returned
//! to the sender's pool once the receiver has copied them out, so a
//! timestep loop stops exercising the allocator after warmup (see
//! [`RankCtx::transport_allocs`]). Self-sends can bypass the mailbox
//! entirely via the loopback fast path ([`RankCtx::loopback_within`] /
//! [`RankCtx::loopback_into`]), which performs the single NIC-DMA
//! stand-in copy while charging the LogGP wire model exactly as the
//! mailbox path would.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Barrier;

use parking_lot::{Condvar, Mutex};

use crate::model::NetworkModel;
use crate::timers::{timed, Timers};
use crate::topo::CartTopo;
use crate::trace::{MsgEvent, Trace};

type Key = (usize, u64); // (source rank, tag)

/// Max buffers retained per rank pool; beyond this, returned buffers
/// are dropped (bounds memory for bursty all-to-all patterns).
const POOL_CAP: usize = 256;

/// Receive-side copies switch to rayon once an epoch moves at least
/// this many bytes; below it fork/join overhead beats the memcpy win.
const PAR_COPY_MIN_BYTES: usize = 1 << 18;

/// An in-flight message: its payload plus the rank whose pool the
/// buffer should return to after delivery (None = not pooled).
struct Msg {
    owner: Option<usize>,
    data: Vec<f64>,
}

/// Recycled send buffers for one rank. `isend` takes from here and the
/// *receiver's* `waitall` puts back, so steady-state transport does no
/// heap allocation.
struct BufferPool {
    free: Mutex<Vec<Vec<f64>>>,
}

impl BufferPool {
    fn new() -> BufferPool {
        BufferPool { free: Mutex::new(Vec::new()) }
    }

    fn take(&self) -> Vec<f64> {
        self.free.lock().pop().unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<f64>) {
        buf.clear();
        let mut g = self.free.lock();
        if g.len() < POOL_CAP {
            g.push(buf);
        }
    }
}

#[derive(Default)]
struct MailboxInner {
    queues: HashMap<Key, VecDeque<Msg>>,
}

/// One rank's incoming-message store.
struct Mailbox {
    inner: Mutex<MailboxInner>,
    signal: Condvar,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox { inner: Mutex::new(MailboxInner::default()), signal: Condvar::new() }
    }

    fn push(&self, key: Key, msg: Msg) {
        let mut g = self.inner.lock();
        g.queues.entry(key).or_default().push_back(msg);
        self.signal.notify_all();
    }

    fn pop_blocking(&self, key: Key) -> Msg {
        let mut g = self.inner.lock();
        loop {
            if let Some(q) = g.queues.get_mut(&key) {
                if let Some(v) = q.pop_front() {
                    return v;
                }
            }
            self.signal.wait(&mut g);
        }
    }
}

/// A posted nonblocking receive; completed by
/// [`RankCtx::waitall_into`] or [`RankCtx::waitall_ranges`].
#[derive(Clone, Copy, Debug)]
pub struct RecvHandle {
    source: usize,
    tag: u64,
}

/// Per-rank execution context handed to the rank body.
pub struct RankCtx<'a> {
    rank: usize,
    topo: &'a CartTopo,
    net: NetworkModel,
    mailboxes: &'a [Mailbox],
    pools: &'a [BufferPool],
    barrier: &'a Barrier,
    timers: Timers,
    trace: Trace,
    // Sends posted since the last waitall (the current epoch).
    epoch_msgs: usize,
    epoch_bytes: usize,
    // Completed-but-uncopied messages, reused across epochs.
    recv_scratch: Vec<Msg>,
    pooling: bool,
    transport_allocs: u64,
}

impl<'a> RankCtx<'a> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.topo.size()
    }

    /// The Cartesian topology.
    pub fn topo(&self) -> &CartTopo {
        self.topo
    }

    /// The wire model in use.
    pub fn network(&self) -> NetworkModel {
        self.net
    }

    /// Run and *really time* a computation phase.
    pub fn time_calc<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.timers.calc += t;
        r
    }

    /// Run and *really time* a packing/unpacking phase.
    pub fn time_pack<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.timers.pack += t;
        r
    }

    /// Run and *really time* work that happens inside the MPI library
    /// (e.g. a derived-datatype pack walk), charged to `call`.
    pub fn time_call<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.timers.call += t;
        r
    }

    /// Charge additional modeled seconds to `call`.
    pub fn charge_call(&mut self, secs: f64) {
        self.timers.call += secs;
    }

    /// Enable or disable send-buffer pooling. On by default; the
    /// transport benches turn it off to measure the fresh-alloc
    /// baseline.
    pub fn set_pooling(&mut self, on: bool) {
        self.pooling = on;
    }

    /// Number of message buffers the transport had to grow or allocate
    /// so far. Stops increasing once the pool is warm — the steady-state
    /// zero-allocation property, asserted by the stress tests.
    pub fn transport_allocs(&self) -> u64 {
        self.transport_allocs
    }

    /// Charge the send-side wire model for one message of `bytes`
    /// payload: `o` seconds of `call`, message/byte counters, epoch
    /// accounting, and the trace event.
    fn charge_send(&mut self, peer: usize, tag: u64, bytes: usize) {
        self.timers.call += self.net.call_time(1);
        self.timers.msgs += 1;
        self.timers.wire_bytes += bytes as u64;
        self.epoch_msgs += 1;
        self.epoch_bytes += bytes;
        self.trace.record(MsgEvent { send: true, peer, tag, bytes });
    }

    /// Post a nonblocking send of `data` to rank `dest` with `tag`.
    /// Charges `o` seconds of `call` time; the copy into the message
    /// stands in for NIC DMA and is not charged to any on-node timer.
    pub fn isend(&mut self, dest: usize, tag: u64, data: &[f64]) {
        assert!(dest < self.topo.size());
        self.charge_send(dest, tag, std::mem::size_of_val(data));
        let msg = if self.pooling {
            let mut buf = self.pools[self.rank].take();
            if buf.capacity() < data.len() {
                self.transport_allocs += 1;
            }
            buf.extend_from_slice(data);
            Msg { owner: Some(self.rank), data: buf }
        } else {
            self.transport_allocs += 1;
            Msg { owner: None, data: data.to_vec() }
        };
        self.mailboxes[dest].push((self.rank, tag), msg);
    }

    /// Loopback fast path for a self-send whose source and destination
    /// live in the *same* slice: copy `data[src]` to `data[dst..]` once
    /// (the NIC-DMA stand-in, not charged to any on-node timer) while
    /// charging the wire model exactly as `isend` + `irecv` would.
    /// `src` and the destination region must not overlap.
    pub fn loopback_within(&mut self, tag: u64, data: &mut [f64], src: Range<usize>, dst: usize) {
        let bytes = src.len() * std::mem::size_of::<f64>();
        self.charge_send(self.rank, tag, bytes);
        // The matching receive post, as `irecv` would charge it.
        self.timers.call += self.net.call_time(1);
        data.copy_within(src, dst);
        self.trace.record(MsgEvent { send: false, peer: self.rank, tag, bytes });
    }

    /// Loopback fast path for a self-send between two distinct slices
    /// (e.g. an mmap view source and the backing storage): one copy,
    /// full wire-model accounting. Lengths must match exactly.
    pub fn loopback_into(&mut self, tag: u64, src: &[f64], dst: &mut [f64]) {
        assert_eq!(
            src.len(),
            dst.len(),
            "loopback length mismatch (rank {}, tag {})",
            self.rank,
            tag
        );
        let bytes = std::mem::size_of_val(src);
        self.charge_send(self.rank, tag, bytes);
        self.timers.call += self.net.call_time(1);
        dst.copy_from_slice(src);
        self.trace.record(MsgEvent { send: false, peer: self.rank, tag, bytes });
    }

    /// Post a nonblocking receive from `source` with `tag`. Charges `o`
    /// seconds of `call` time.
    pub fn irecv(&mut self, source: usize, tag: u64) -> RecvHandle {
        assert!(source < self.topo.size());
        self.timers.call += self.net.call_time(1);
        RecvHandle { source, tag }
    }

    /// Block until every posted receive has a matching message, moving
    /// them into `recv_scratch` in handle order and recording trace
    /// events. Panics on length mismatch against `expect_len`.
    fn complete_recvs(&mut self, handles: &[RecvHandle], expect_len: impl Fn(usize) -> usize) {
        self.recv_scratch.clear();
        for (i, h) in handles.iter().enumerate() {
            let msg = self.mailboxes[self.rank].pop_blocking((h.source, h.tag));
            assert_eq!(
                msg.data.len(),
                expect_len(i),
                "message length mismatch (source {}, tag {})",
                h.source,
                h.tag
            );
            self.trace.record(MsgEvent {
                send: false,
                peer: h.source,
                tag: h.tag,
                bytes: msg.data.len() * 8,
            });
            self.recv_scratch.push(msg);
        }
    }

    /// Charge the LogGP `wait` term for this epoch's posted sends and
    /// close the epoch.
    fn close_epoch(&mut self) {
        self.timers.wait += self.net.wait_time(self.epoch_msgs, self.epoch_bytes);
        self.epoch_msgs = 0;
        self.epoch_bytes = 0;
    }

    /// Return completed message buffers to their owners' pools.
    fn recycle_scratch(&mut self) {
        let pools = self.pools;
        for msg in self.recv_scratch.drain(..) {
            if let Some(owner) = msg.owner {
                pools[owner].put(msg.data);
            }
        }
    }

    /// Complete all posted receives, copying each message into its
    /// destination buffer (buffers parallel to `handles`; lengths must
    /// match exactly). Charges the LogGP `wait` term for this epoch's
    /// posted sends, then closes the epoch.
    pub fn waitall_into(&mut self, handles: &[RecvHandle], bufs: &mut [&mut [f64]]) {
        assert_eq!(handles.len(), bufs.len());
        self.complete_recvs(handles, |i| bufs[i].len());
        let total: usize = self.recv_scratch.iter().map(|m| m.data.len() * 8).sum();
        if total >= PAR_COPY_MIN_BYTES {
            use rayon::prelude::*;
            bufs.par_iter_mut()
                .zip(self.recv_scratch.par_iter())
                .for_each(|(buf, msg)| buf.copy_from_slice(&msg.data));
        } else {
            for (buf, msg) in bufs.iter_mut().zip(self.recv_scratch.iter()) {
                buf.copy_from_slice(&msg.data);
            }
        }
        self.recycle_scratch();
        self.close_epoch();
    }

    /// Complete all posted receives directly into sub-ranges of one
    /// backing slice (`ranges` parallel to `handles`, sorted and
    /// disjoint), then charge `wait` and close the epoch. This is the
    /// persistent-exchange completion path: no per-call allocation, and
    /// the disjoint ghost copies run in parallel for large epochs.
    ///
    /// Calling with empty `handles` still closes the epoch — a rank
    /// whose sends were all loopbacks uses this to charge `wait`.
    pub fn waitall_ranges(
        &mut self,
        handles: &[RecvHandle],
        storage: &mut [f64],
        ranges: &[Range<usize>],
    ) {
        assert_eq!(handles.len(), ranges.len());
        self.complete_recvs(handles, |i| ranges[i].len());
        let total: usize = ranges.iter().map(|r| r.len() * 8).sum();
        if total >= PAR_COPY_MIN_BYTES {
            scatter_parallel(storage, 0, ranges, &self.recv_scratch);
        } else {
            for (r, msg) in ranges.iter().zip(self.recv_scratch.iter()) {
                storage[r.clone()].copy_from_slice(&msg.data);
            }
        }
        self.recycle_scratch();
        self.close_epoch();
    }

    /// Record payload bytes (the non-padding fraction of the wire bytes)
    /// for bandwidth accounting.
    pub fn note_payload(&mut self, bytes: usize) {
        self.timers.payload_bytes += bytes as u64;
    }

    /// Charge additional modeled seconds to `wait` (used by the GPU
    /// paths to account for staging or page migration on the wire side).
    pub fn charge_wait(&mut self, secs: f64) {
        self.timers.wait += secs;
    }

    /// Charge additional *modeled* seconds to `calc` (used by the GPU
    /// roofline, whose kernels run on the host but are billed as device
    /// time).
    pub fn charge_calc(&mut self, secs: f64) {
        self.timers.calc += secs;
    }

    /// Charge additional modeled seconds to `pack`.
    pub fn charge_pack(&mut self, secs: f64) {
        self.timers.pack += secs;
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Snapshot of the accumulated timers.
    pub fn timers(&self) -> Timers {
        self.timers
    }

    /// Zero the timers (e.g. after warmup steps).
    pub fn reset_timers(&mut self) {
        self.timers.reset();
    }

    /// Start recording a message trace (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    /// Drain the recorded message events.
    pub fn take_trace(&mut self) -> Vec<MsgEvent> {
        self.trace.take()
    }
}

/// Copy `msgs[i]` into `storage[ranges[i]]` for sorted, disjoint
/// ranges, fork/joining on the range list so the disjoint ghost copies
/// run in parallel without any allocation. `base` is the element index
/// of `storage[0]` in the original slice.
fn scatter_parallel(storage: &mut [f64], base: usize, ranges: &[Range<usize>], msgs: &[Msg]) {
    debug_assert_eq!(ranges.len(), msgs.len());
    if ranges.len() <= 1 {
        if let (Some(r), Some(msg)) = (ranges.first(), msgs.first()) {
            storage[r.start - base..r.end - base].copy_from_slice(&msg.data);
        }
        return;
    }
    let mid = ranges.len() / 2;
    let split = ranges[mid].start;
    assert!(
        split >= ranges[mid - 1].end && split >= base,
        "ranges must be sorted and disjoint"
    );
    let (lo, hi) = storage.split_at_mut(split - base);
    rayon::join(
        || scatter_parallel(lo, base, &ranges[..mid], &msgs[..mid]),
        || scatter_parallel(hi, split, &ranges[mid..], &msgs[mid..]),
    );
}

/// Run `body` once per rank of `topo` on its own OS thread and collect
/// the per-rank results in rank order.
pub fn run_cluster<R, F>(topo: &CartTopo, net: NetworkModel, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx<'_>) -> R + Sync,
{
    let size = topo.size();
    let mailboxes: Vec<Mailbox> = (0..size).map(|_| Mailbox::new()).collect();
    let pools: Vec<BufferPool> = (0..size).map(|_| BufferPool::new()).collect();
    let barrier = Barrier::new(size);
    let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();

    std::thread::scope(|s| {
        let mut joins = Vec::with_capacity(size);
        for (rank, slot) in results.iter_mut().enumerate() {
            let mailboxes = &mailboxes;
            let pools = &pools;
            let barrier = &barrier;
            let body = &body;
            joins.push(s.spawn(move || {
                let mut ctx = RankCtx {
                    rank,
                    topo,
                    net,
                    mailboxes,
                    pools,
                    barrier,
                    timers: Timers::default(),
                    trace: Trace::default(),
                    epoch_msgs: 0,
                    epoch_bytes: 0,
                    recv_scratch: Vec::new(),
                    pooling: true,
                    transport_allocs: 0,
                };
                *slot = Some(body(&mut ctx));
            }));
        }
        for j in joins {
            j.join().expect("rank thread panicked");
        }
    });

    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange_delivers() {
        let topo = CartTopo::new(&[4], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let rank = ctx.rank();
            let right = ctx.topo().neighbor(rank, &[1]).unwrap();
            let left = ctx.topo().neighbor(rank, &[-1]).unwrap();
            let data = vec![rank as f64; 8];
            let h = ctx.irecv(left, 7);
            ctx.isend(right, 7, &data);
            let mut buf = [0.0; 8];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]);
            buf[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn self_send_loopback() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let h = ctx.irecv(0, 1);
            ctx.isend(0, 1, &[5.0, 6.0]);
            let mut buf = vec![0.0; 2];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]);
            buf
        });
        assert_eq!(out[0], vec![5.0, 6.0]);
    }

    #[test]
    fn non_overtaking_order() {
        let topo = CartTopo::new(&[2], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(1, 3, &[1.0]);
                ctx.isend(1, 3, &[2.0]);
                ctx.isend(1, 3, &[3.0]);
                Vec::new()
            } else {
                let hs = [ctx.irecv(0, 3), ctx.irecv(0, 3), ctx.irecv(0, 3)];
                let (mut a, mut b, mut c) = ([0.0], [0.0], [0.0]);
                ctx.waitall_into(&hs, &mut [&mut a, &mut b, &mut c]);
                vec![a[0], b[0], c[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn timers_account_wire_model() {
        let topo = CartTopo::new(&[2], true);
        let net = NetworkModel::theta_aries();
        let out = run_cluster(&topo, net, |ctx| {
            let peer = 1 - ctx.rank();
            let h = ctx.irecv(peer, 0);
            ctx.isend(peer, 0, &vec![0.0; 1024]);
            let mut buf = vec![0.0; 1024];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]);
            ctx.timers()
        });
        let t = out[0];
        assert_eq!(t.msgs, 1);
        assert_eq!(t.wire_bytes, 8192);
        // call = 2 posts (send + recv), wait = α + bytes/β.
        assert!((t.call - 2.0 * net.overhead).abs() < 1e-12);
        assert!((t.wait - net.wait_time(1, 8192)).abs() < 1e-12);
    }

    #[test]
    fn timed_phases_accumulate() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            ctx.time_calc(|| std::hint::black_box((0..10000).sum::<u64>()));
            ctx.time_pack(|| std::hint::black_box(vec![0u8; 4096]));
            ctx.timers()
        });
        assert!(out[0].calc > 0.0);
        assert!(out[0].pack > 0.0);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let topo = CartTopo::new(&[4], true);
        let counter = AtomicUsize::new(0);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn mismatched_recv_length_panics() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let h = ctx.irecv(0, 0);
            ctx.isend(0, 0, &[1.0, 2.0]);
            let mut buf = [0.0; 3];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]);
        });
    }

    #[test]
    fn pooled_buffers_stop_allocating() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let data = vec![1.0; 256];
            let mut buf = vec![0.0; 256];
            // Warm the pool: the first epoch grows a fresh buffer.
            for _ in 0..3 {
                let h = ctx.irecv(0, 9);
                ctx.isend(0, 9, &data);
                ctx.waitall_into(&[h], &mut [&mut buf[..]]);
            }
            let warm = ctx.transport_allocs();
            assert!(warm >= 1);
            for _ in 0..50 {
                let h = ctx.irecv(0, 9);
                ctx.isend(0, 9, &data);
                ctx.waitall_into(&[h], &mut [&mut buf[..]]);
            }
            assert_eq!(ctx.transport_allocs(), warm, "steady state must not allocate");
        });
    }

    #[test]
    fn pooling_off_allocates_every_send() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            ctx.set_pooling(false);
            let data = vec![1.0; 64];
            let mut buf = vec![0.0; 64];
            for _ in 0..10 {
                let h = ctx.irecv(0, 2);
                ctx.isend(0, 2, &data);
                ctx.waitall_into(&[h], &mut [&mut buf[..]]);
            }
            assert_eq!(ctx.transport_allocs(), 10);
        });
    }

    #[test]
    fn loopback_within_matches_mailbox_timers_and_data() {
        let topo = CartTopo::new(&[1], true);
        let net = NetworkModel::theta_aries();
        run_cluster(&topo, net, |ctx| {
            // Mailbox self-send: data[0..4] -> data[8..12].
            let mut a: Vec<f64> = (0..12).map(|i| i as f64).collect();
            let h = ctx.irecv(0, 5);
            let payload = a[0..4].to_vec();
            ctx.isend(0, 5, &payload);
            ctx.waitall_into(&[h], &mut [&mut a[8..12]]);
            let t_mailbox = ctx.timers();
            let a_snapshot = a.clone();
            ctx.reset_timers();

            // Loopback fast path, same shape.
            let mut b: Vec<f64> = (0..12).map(|i| i as f64).collect();
            ctx.loopback_within(5, &mut b, 0..4, 8);
            ctx.waitall_ranges(&[], &mut b, &[]);
            let t_loop = ctx.timers();

            assert_eq!(a_snapshot, b);
            assert_eq!(t_mailbox.call, t_loop.call);
            assert_eq!(t_mailbox.wait, t_loop.wait);
            assert_eq!(t_mailbox.msgs, t_loop.msgs);
            assert_eq!(t_mailbox.wire_bytes, t_loop.wire_bytes);
        });
    }

    #[test]
    fn loopback_into_copies_and_charges() {
        let topo = CartTopo::new(&[1], true);
        let net = NetworkModel::theta_aries();
        run_cluster(&topo, net, |ctx| {
            let src = vec![3.5; 128];
            let mut dst = vec![0.0; 128];
            ctx.loopback_into(7, &src, &mut dst);
            ctx.waitall_ranges(&[], &mut dst, &[]);
            assert_eq!(dst, src);
            let t = ctx.timers();
            assert_eq!(t.msgs, 1);
            assert_eq!(t.wire_bytes, 1024);
            assert!((t.call - 2.0 * net.overhead).abs() < 1e-15);
            assert!((t.wait - net.wait_time(1, 1024)).abs() < 1e-15);
        });
    }

    #[test]
    fn waitall_ranges_scatters_into_storage() {
        let topo = CartTopo::new(&[2], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let peer = 1 - ctx.rank();
            let me = ctx.rank() as f64;
            let h1 = ctx.irecv(peer, 1);
            let h2 = ctx.irecv(peer, 2);
            ctx.isend(peer, 1, &[me + 10.0; 4]);
            ctx.isend(peer, 2, &[me + 20.0; 4]);
            let mut storage = vec![0.0; 16];
            ctx.waitall_ranges(&[h1, h2], &mut storage, &[2..6, 10..14]);
            storage
        });
        // Rank 0 received rank 1's payloads.
        assert_eq!(out[0][2..6], [11.0; 4]);
        assert_eq!(out[0][10..14], [21.0; 4]);
        assert_eq!(out[0][0..2], [0.0; 2]);
        assert_eq!(out[1][2..6], [10.0; 4]);
    }
}
