//! Virtual cluster with MPI-style nonblocking point-to-point, runnable
//! on two interchangeable backends (see [`Backend`]):
//!
//! * **Thread** — one OS thread per rank, blocking on condvars. The
//!   reference implementation: simple, preemptive, and limited to
//!   roughly a thousand ranks by kernel scheduling overhead.
//! * **Event** — ranks are resumable tasks multiplexed onto a small
//!   worker pool by [`crate::event`]; a rank that would block parks and
//!   is re-queued when its message, barrier release, or (virtual)
//!   timer fires. Scales to 10k+ ranks on one machine.
//!
//! Both backends run the *same* rank-body code against the same
//! [`RankCtx`] API, with modeled time billed identically — results are
//! bit-identical across backends by construction.
//!
//! Data really moves between rank memories (one copy, standing in for
//! NIC DMA and therefore not charged to any on-node timer); completion
//! *times* come from the [`NetworkModel`]. Message matching follows MPI
//! semantics: `(source, tag)` with non-overtaking order per pair.
//!
//! The transport is persistent and allocation-free in steady state:
//! message buffers come from a per-rank [`BufferPool`] and are returned
//! to the sender's pool once the receiver has copied them out, so a
//! timestep loop stops exercising the allocator after warmup (see
//! [`RankCtx::transport_allocs`]). Self-sends can bypass the mailbox
//! entirely via the loopback fast path ([`RankCtx::loopback_within`] /
//! [`RankCtx::loopback_into`]), which performs the single NIC-DMA
//! stand-in copy while charging the LogGP wire model exactly as the
//! mailbox path would.
//!
//! The fabric can misbehave on purpose: [`run_cluster_faulty`] arms a
//! seeded [`FaultPlan`] per rank, and `isend` then consults it to drop,
//! duplicate, corrupt or delay messages deterministically (see
//! [`crate::fault`]). To keep a lossy fabric from hanging ranks
//! forever, receives are deadline-aware: [`RankCtx::set_recv_timeout`]
//! arms a deadline and `waitall_*` reports a structured
//! [`NetsimError::Timeout`] — including a dump of the unmatched mailbox
//! keys, the deadlock detector's view — instead of blocking.
//!
//! A rank body that panics no longer aborts the whole process through
//! a poisoned join: the panic is caught at the rank boundary, the rest
//! of the cluster is woken and unwound, and the run reports a
//! structured [`NetsimError::RankPanicked`] (via [`try_run_cluster`];
//! the panicking convenience wrappers re-panic with that message).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use telemetry::{Phase, Recorder, Timeline};

use crate::error::{NetsimError, MAX_DIAG_KEYS};
use crate::fault::{
    FaultConfig, FaultDecision, FaultEvent, FaultKind, FaultPlan, FaultStats, ProcFault,
    CTRL_TAG_BIT,
};
use crate::hier::{HierarchicalNetworkModel, NodeShape};
use crate::model::NetworkModel;
use crate::timers::{timed, Timers};
use crate::topo::CartTopo;
use crate::trace::{MsgEvent, Trace};

type Key = (usize, u64); // (source rank, tag)

/// Max buffers retained per rank pool; beyond this, returned buffers
/// are dropped (bounds memory for bursty all-to-all patterns — and for
/// duplicate storms under fault injection).
pub const POOL_CAP: usize = 256;

/// Receive-side copies switch to rayon once an epoch moves at least
/// this many bytes; below it fork/join overhead beats the memcpy win.
const PAR_COPY_MIN_BYTES: usize = 1 << 18;

/// An in-flight message: its payload plus the rank whose pool the
/// buffer should return to after delivery (None = not pooled).
struct Msg {
    owner: Option<usize>,
    data: Vec<f64>,
}

/// Recycled send buffers for one rank. `isend` takes from here and the
/// *receiver's* `waitall` puts back, so steady-state transport does no
/// heap allocation.
struct BufferPool {
    free: Mutex<Vec<Vec<f64>>>,
}

impl BufferPool {
    fn new() -> BufferPool {
        BufferPool { free: Mutex::new(Vec::new()) }
    }

    fn take(&self) -> Vec<f64> {
        self.free.lock().pop().unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<f64>) {
        buf.clear();
        let mut g = self.free.lock();
        if g.len() < POOL_CAP {
            g.push(buf);
        }
    }

    fn len(&self) -> usize {
        self.free.lock().len()
    }
}

#[derive(Default)]
struct MailboxInner {
    queues: HashMap<Key, VecDeque<Msg>>,
}

/// One rank's incoming-message store.
/// A cancellable cluster barrier for the thread backend: like
/// `std::sync::Barrier`, but a panicking rank can [`abort`] it so the
/// surviving ranks return (with `false`) instead of blocking forever on
/// a rendezvous that can never complete.
///
/// [`abort`]: AbortableBarrier::abort
struct AbortableBarrier {
    /// (arrived count, generation).
    state: Mutex<(usize, u64)>,
    cv: Condvar,
    size: usize,
    aborted: AtomicBool,
}

impl AbortableBarrier {
    fn new(size: usize) -> AbortableBarrier {
        AbortableBarrier { state: Mutex::new((0, 0)), cv: Condvar::new(), size, aborted: AtomicBool::new(false) }
    }

    /// Wait for all ranks; `false` means the barrier was aborted.
    fn wait(&self) -> bool {
        let mut g = self.state.lock();
        if self.aborted.load(Ordering::SeqCst) {
            return false;
        }
        g.0 += 1;
        if g.0 == self.size {
            g.0 = 0;
            g.1 += 1;
            self.cv.notify_all();
            return true;
        }
        let gen = g.1;
        while g.1 == gen {
            self.cv.wait(&mut g);
            if self.aborted.load(Ordering::SeqCst) {
                return false;
            }
        }
        true
    }

    fn abort(&self) {
        let _g = self.state.lock();
        self.aborted.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

/// Shared process-liveness state for one cluster run: which ranks are
/// currently dead, whether the communicator is revoked (ULFM-style: a
/// crash-stop was observed and every blocking operation must unwind
/// with [`NetsimError::RankFailed`] instead of waiting on traffic that
/// cannot arrive), and the failure the survivors must agree on.
struct ProcState {
    /// Per-rank crash flag. A dead rank's incoming sends vanish (the
    /// NIC is gone); cleared when the runner respawns the rank.
    dead: Vec<AtomicBool>,
    /// Set by [`RankCtx::die`], cleared by rank 0 at the end of the
    /// recovery epoch (before releasing the recovery fence, so no
    /// survivor can observe a stale revocation afterwards).
    revoked: AtomicBool,
    /// The failed rank (`usize::MAX` = none).
    failed_rank: AtomicUsize,
    /// The timestep the victim was executing when it died.
    failed_step: AtomicU64,
    /// Wall-clock kill instant, for detection-latency telemetry.
    killed_at: Mutex<Option<Instant>>,
}

impl ProcState {
    fn new(size: usize) -> ProcState {
        ProcState {
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            revoked: AtomicBool::new(false),
            failed_rank: AtomicUsize::new(usize::MAX),
            failed_step: AtomicU64::new(0),
            killed_at: Mutex::new(None),
        }
    }
}

/// Panic payload thrown by [`RankCtx::die`] to unwind a crash-stopped
/// rank out of arbitrarily deep protocol code. The runners' respawn
/// loops catch it and re-enter the rank body with a fresh incarnation;
/// any other panic payload keeps the existing abort-the-cluster path.
struct KillSentinel;

struct Mailbox {
    inner: Mutex<MailboxInner>,
    signal: Condvar,
}

impl Mailbox {
    fn new() -> Mailbox {
        Mailbox { inner: Mutex::new(MailboxInner::default()), signal: Condvar::new() }
    }

    fn push(&self, key: Key, msg: Msg) {
        let mut g = self.inner.lock();
        g.queues.entry(key).or_default().push_back(msg);
        self.signal.notify_all();
    }

    /// Pop the next message for `key`, blocking until `deadline` (or
    /// forever when `None`). `None` return = deadline expired, or
    /// `stopped` reports the wait is pointless — the cluster is
    /// aborting (a peer rank panicked) or revoked (a peer rank
    /// crash-stopped) — all meaning "stop waiting, the message is not
    /// coming".
    fn pop_deadline(
        &self,
        key: Key,
        deadline: Option<Instant>,
        stopped: &dyn Fn() -> bool,
    ) -> Option<Msg> {
        let mut g = self.inner.lock();
        loop {
            if let Some(q) = g.queues.get_mut(&key) {
                if let Some(v) = q.pop_front() {
                    return Some(v);
                }
            }
            if stopped() {
                return None;
            }
            match deadline {
                None => self.signal.wait(&mut g),
                Some(d) => {
                    if self.signal.wait_until(&mut g, d).timed_out() {
                        // Final re-check: a push may have raced expiry.
                        return g.queues.get_mut(&key).and_then(|q| q.pop_front());
                    }
                }
            }
        }
    }

    /// Wake any thread-backend waiter so it observes the abort flag.
    fn interrupt(&self) {
        let _g = self.inner.lock();
        self.signal.notify_all();
    }

    /// Pop without blocking.
    fn try_pop(&self, key: Key) -> Option<Msg> {
        self.inner.lock().queues.get_mut(&key).and_then(|q| q.pop_front())
    }

    /// Remove every queued message for `key` (stale duplicates /
    /// late retries); also drops the now-empty queue entry so the key
    /// map cannot grow without bound across retried exchanges.
    fn drain(&self, key: Key) -> Vec<Msg> {
        let mut g = self.inner.lock();
        match g.queues.remove(&key) {
            Some(q) => q.into_iter().collect(),
            None => Vec::new(),
        }
    }

    /// Remove every queued message whose key fails `keep` — the
    /// recovery epoch's mailbox flush, which must evict all stale
    /// data-plane traffic from before a rank failure while preserving
    /// in-flight recovery-protocol frames.
    fn drain_except(&self, keep: &dyn Fn(usize, u64) -> bool) -> Vec<Msg> {
        let mut g = self.inner.lock();
        let mut out = Vec::new();
        g.queues.retain(|&(src, tag), q| {
            if keep(src, tag) {
                true
            } else {
                out.extend(q.drain(..));
                false
            }
        });
        out
    }

    /// Diagnostic dump: `(source, tag, queued)` for the non-empty
    /// queues with the smallest keys, sorted, capped at
    /// [`MAX_DIAG_KEYS`] by bounded insertion so the error path stays
    /// allocation-bounded at high rank counts — and allocation-free
    /// when the mailbox is empty, which the steady-state timeout guard
    /// (`tests/event_alloc.rs`) counts on.
    fn unmatched_keys(&self) -> Vec<(usize, u64, usize)> {
        let g = self.inner.lock();
        let mut keys: Vec<(usize, u64, usize)> = Vec::new();
        for (&(src, tag), q) in g.queues.iter().filter(|(_, q)| !q.is_empty()) {
            if keys.capacity() == 0 {
                keys.reserve_exact(MAX_DIAG_KEYS);
            }
            let k = (src, tag, q.len());
            let pos = keys.binary_search(&k).unwrap_or_else(|p| p);
            if pos < MAX_DIAG_KEYS {
                if keys.len() == MAX_DIAG_KEYS {
                    keys.pop();
                }
                keys.insert(pos, k);
            }
        }
        keys
    }
}

/// A posted nonblocking receive; completed by
/// [`RankCtx::waitall_into`], [`RankCtx::waitall_ranges`], or — on the
/// non-blocking overlap path — [`RankCtx::try_wait`] /
/// [`RankCtx::progress`].
#[derive(Clone, Copy, Debug)]
#[must_use = "a posted receive must be completed (waitall_*, try_wait, or progress) \
              or the message leaks in the mailbox"]
pub struct RecvHandle {
    source: usize,
    tag: u64,
}

/// A message popped off the mailbox by [`RankCtx::recv_deadline`] —
/// the low-level completion used by reliable-exchange protocols that
/// need to inspect frames (checksums, sequence numbers) before
/// deciding where the payload lands. Return it to the transport with
/// [`RankCtx::recycle`] so pooled buffers keep circulating.
pub struct RecvdMsg {
    owner: Option<usize>,
    data: Vec<f64>,
}

impl RecvdMsg {
    /// The received frame.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

/// Which execution substrate a rank runs on. Blocking operations
/// (mailbox waits, barriers) route through here; everything else —
/// matching, billing, fault injection — is backend-independent code,
/// which is what makes the two backends bit-identical by construction.
enum Runtime<'a> {
    /// One OS thread per rank; blocking = condvar waits.
    Thread { barrier: &'a AbortableBarrier },
    /// Resumable task multiplexed by the event scheduler; blocking =
    /// park/wake. Task id == rank.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Event { sched: &'a crate::event::Sched },
}

/// Per-rank execution context handed to the rank body.
pub struct RankCtx<'a> {
    rank: usize,
    topo: &'a CartTopo,
    net: NetworkModel,
    mailboxes: &'a [Mailbox],
    pools: &'a [BufferPool],
    runtime: Runtime<'a>,
    abort: &'a AtomicBool,
    timers: Timers,
    trace: Trace,
    recorder: Recorder,
    // Sends posted since the last waitall (the current epoch). In a
    // hierarchical run these count only the off-node (fabric) portion.
    epoch_msgs: usize,
    epoch_bytes: usize,
    // Two-tier fabric state: `Some((intra, node))` only when the run's
    // topology is genuinely hierarchical; `net` is then the inter-node
    // tier (with this rank's jitter applied to both). Flat runs keep
    // this `None` and bill through the unchanged flat path.
    hier: Option<(NetworkModel, NodeShape)>,
    // On-node portion of the current epoch (hierarchical runs only).
    epoch_msgs_on: usize,
    epoch_bytes_on: usize,
    // Completed-but-uncopied messages, reused across epochs.
    recv_scratch: Vec<Msg>,
    pooling: bool,
    transport_allocs: u64,
    fault: Option<FaultPlan>,
    fault_bypass: bool,
    recv_timeout: Option<Duration>,
    // Process-fault machinery (see `ProcState`). `kill`/`stall` are
    // this rank's armed process faults (first incarnation only);
    // `cur_step` is the timestep window armed by the resilient driver
    // (`u64::MAX` = disarmed: harness/recovery traffic cannot be
    // killed) and `step_ops` counts data-plane ops within it.
    proc: &'a ProcState,
    kill: Option<ProcFault>,
    stall: Option<ProcFault>,
    cur_step: u64,
    step_ops: u64,
    stall_fired: bool,
    recovery_mode: bool,
    incarnation: usize,
    detect_latency: Option<f64>,
}

impl<'a> RankCtx<'a> {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.topo.size()
    }

    /// The Cartesian topology.
    pub fn topo(&self) -> &CartTopo {
        self.topo
    }

    /// The wire model in use (already includes this rank's fault-plan
    /// slowdown factor, if any). Under a hierarchical topology this is
    /// the inter-node *fabric* tier; see [`RankCtx::network_to`] for
    /// the tier a specific peer is charged on.
    pub fn network(&self) -> NetworkModel {
        self.net
    }

    /// The wire model charged for messages between this rank and
    /// `peer`: the shared-memory tier when both live on the same node
    /// of a hierarchical topology, the fabric tier otherwise. On a flat
    /// topology this is always [`RankCtx::network`].
    pub fn network_to(&self, peer: usize) -> NetworkModel {
        self.net_to(peer)
    }

    #[inline]
    fn net_to(&self, peer: usize) -> NetworkModel {
        match &self.hier {
            Some((intra, node)) if node.same_node(self.rank, peer) => *intra,
            _ => self.net,
        }
    }

    /// Whether `peer` shares this rank's node (true only in a
    /// hierarchical run; the flat degenerate case has one rank per
    /// node, so nothing — not even a self-send — counts as on-node).
    #[inline]
    fn on_node(&self, peer: usize) -> bool {
        matches!(&self.hier, Some((_, node)) if node.same_node(self.rank, peer))
    }

    /// Single billing point: every second this rank is charged flows
    /// through here, advancing both the matching [`Timers`] field and —
    /// when profiling is on — the recorder's virtual clock. Routing all
    /// charges through one spot is what makes the telemetry invariant
    /// (per-phase span sums == timer totals) hold by construction.
    fn bill(&mut self, phase: Phase, secs: f64) {
        match phase {
            Phase::Compute => self.timers.calc += secs,
            Phase::Pack | Phase::Unpack | Phase::Copy => self.timers.pack += secs,
            Phase::Wire => self.timers.call += secs,
            Phase::Wait => self.timers.wait += secs,
        }
        self.recorder.charge(phase, secs);
    }

    /// Run and *really time* a computation phase.
    pub fn time_calc<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.bill(Phase::Compute, t);
        r
    }

    /// Like [`RankCtx::time_calc`], but hands the closure the span
    /// recorder so an instrumented kernel can attribute slices of the
    /// measured interval itself (per-plan-stage spans). Whatever the
    /// closure does not account for is billed as plain compute, so the
    /// total charged always equals the really-measured wall time.
    pub fn time_calc_with<R>(&mut self, f: impl FnOnce(&mut Recorder) -> R) -> R {
        let mut rec = std::mem::take(&mut self.recorder);
        let before = rec.now();
        let (r, t) = timed(|| f(&mut rec));
        let inner = rec.now() - before;
        self.recorder = rec;
        self.timers.calc += t;
        self.recorder.charge(Phase::Compute, (t - inner).max(0.0));
        r
    }

    /// Run and *really time* a packing phase.
    pub fn time_pack<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.bill(Phase::Pack, t);
        r
    }

    /// Run and *really time* an unpacking phase. Accumulates into the
    /// same `pack` timer as [`RankCtx::time_pack`] (the paper reports
    /// one packing number) but is attributed separately in timelines.
    pub fn time_unpack<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.bill(Phase::Unpack, t);
        r
    }

    /// Run and *really time* an on-node staging copy that is neither
    /// pack nor unpack (view maintenance, buffer shuffles). Shares the
    /// `pack` timer; attributed as `copy` in timelines.
    pub fn time_copy<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.bill(Phase::Copy, t);
        r
    }

    /// Run and *really time* work that happens inside the MPI library
    /// (e.g. a derived-datatype pack walk), charged to `call`.
    pub fn time_call<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let (r, t) = timed(f);
        self.bill(Phase::Wire, t);
        r
    }

    /// Charge additional modeled seconds to `call`.
    pub fn charge_call(&mut self, secs: f64) {
        self.bill(Phase::Wire, secs);
    }

    /// Turn on span/counter recording for this rank. Exchange engines
    /// then wrap their work in [`RankCtx::scoped`] and every charged
    /// second lands as a leaf span on the rank's virtual timeline.
    pub fn enable_profiling(&mut self) {
        self.recorder.enable(self.rank);
    }

    /// Whether span recording is on.
    pub fn profiling_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Open a named scope for the duration of `f`: charges billed
    /// inside nest under it on the timeline. Free when profiling is
    /// off. Closure-based so spans are well-nested by construction.
    pub fn scoped<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.recorder.open(name);
        let r = f(self);
        self.recorder.close();
        r
    }

    /// Bump a named profiling counter (no-op when profiling is off).
    pub fn note_count(&mut self, name: &'static str, delta: u64) {
        self.recorder.count(name, delta);
    }

    /// Drain this rank's recorded timeline (empty when profiling was
    /// never enabled). Call before timer-reducing collectives, whose
    /// own wire traffic would otherwise pollute the spans.
    pub fn take_timeline(&mut self) -> Timeline {
        self.recorder.take_timeline()
    }

    /// Enable or disable send-buffer pooling. On by default; the
    /// transport benches turn it off to measure the fresh-alloc
    /// baseline.
    pub fn set_pooling(&mut self, on: bool) {
        self.pooling = on;
    }

    /// Number of message buffers the transport had to grow or allocate
    /// so far. Stops increasing once the pool is warm — the steady-state
    /// zero-allocation property, asserted by the stress tests.
    pub fn transport_allocs(&self) -> u64 {
        self.transport_allocs
    }

    /// Buffers currently parked in this rank's send pool (bounded by
    /// [`POOL_CAP`]; the fault stress tests assert the bound holds
    /// under duplicate/retry storms).
    pub fn pool_len(&self) -> usize {
        self.pools[self.rank].len()
    }

    /// Whether a fault plan is armed (and not bypassed) on this rank.
    pub fn fault_active(&self) -> bool {
        self.fault.is_some() && !self.fault_bypass
    }

    /// Whether the armed fault plan can actually lose or damage data
    /// (drop/corrupt/dup). Delay- or jitter-only plans stretch modeled
    /// time but deliver every payload intact, so engines keep their
    /// fast overlap/partitioned paths open under them.
    pub fn fault_lossy(&self) -> bool {
        self.fault_active() && self.fault.as_ref().is_some_and(|p| p.config().lossy())
    }

    /// This rank's virtual clock: the sum of every second billed so far
    /// (compute, pack, call and wait). Monotone between timer resets.
    /// The partitioned-channel layer timestamps shipped fragments with
    /// it so fragment bandwidth can drain behind later billed work.
    pub fn virtual_time(&self) -> f64 {
        self.timers.total()
    }

    /// Injection totals for this rank so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|p| p.stats()).unwrap_or_default()
    }

    /// Temporarily exempt sends from fault injection (the degraded
    /// "mailbox fallback" path of a reliable exchange, and other
    /// control-plane traffic). Returns the previous setting so callers
    /// can restore it.
    pub fn set_fault_bypass(&mut self, on: bool) -> bool {
        std::mem::replace(&mut self.fault_bypass, on)
    }

    /// Arm (or disarm) a deadline for `waitall_*` and
    /// [`RankCtx::recv_deadline`] completions. `None` (the default)
    /// blocks forever, preserving the fault-free semantics.
    pub fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.recv_timeout = timeout;
    }

    /// The armed receive deadline, if any.
    pub fn recv_timeout(&self) -> Option<Duration> {
        self.recv_timeout
    }

    /// Arm the process-fault window for timestep `step`: a `kill:` /
    /// `stall:` schedule targeting this step can now fire, at the
    /// scheduled data-plane operation count. Resilient drivers call
    /// this right before each step body and
    /// [`RankCtx::clear_fault_step`] right after, so checkpointing and
    /// recovery traffic can never be killed — which is what keeps every
    /// rank's checkpoint set identical.
    pub fn set_fault_step(&mut self, step: u64) {
        self.cur_step = step;
        self.step_ops = 0;
    }

    /// Disarm the process-fault window (see [`RankCtx::set_fault_step`]).
    pub fn clear_fault_step(&mut self) {
        self.cur_step = u64::MAX;
    }

    /// How many times this rank's body has been (re)started: 0 for the
    /// original process, ≥ 1 for a respawn after a crash-stop fault.
    /// A resilient driver seeing a nonzero incarnation skips straight
    /// to the recovery epoch to adopt its buddy's checkpoint.
    pub fn incarnation(&self) -> usize {
        self.incarnation
    }

    /// Whether the communicator is revoked: a crash-stop fault was
    /// observed somewhere and blocking operations outside recovery
    /// mode unwind with [`NetsimError::RankFailed`].
    pub fn revoked(&self) -> bool {
        self.proc.revoked.load(Ordering::SeqCst)
    }

    /// The pending failure the survivors must recover from, as
    /// `(failed rank, failed step)` — `None` once recovery completed.
    pub fn failed_info(&self) -> Option<(usize, u64)> {
        let r = self.proc.failed_rank.load(Ordering::SeqCst);
        (r != usize::MAX).then(|| (r, self.proc.failed_step.load(Ordering::SeqCst)))
    }

    /// This rank's view of the pending failure as a structured error,
    /// recording the detection latency (wall-clock seconds from kill to
    /// first observation, telemetry only) the first time it fires.
    pub fn rank_failure(&mut self) -> Option<NetsimError> {
        let (rank, step) = self.failed_info()?;
        if self.detect_latency.is_none() {
            let at: Option<Instant> = *self.proc.killed_at.lock();
            self.detect_latency = Some(at.map_or(0.0, |t| t.elapsed().as_secs_f64()));
        }
        Some(NetsimError::RankFailed { rank, detected_by: self.rank, step })
    }

    /// Detection latency recorded by [`RankCtx::rank_failure`], if this
    /// rank ever observed a failure.
    pub fn detect_latency(&self) -> Option<f64> {
        self.detect_latency
    }

    /// Enter recovery mode: blocking operations wait normally again
    /// (the recovery protocol's own traffic must flow on a revoked
    /// communicator) until [`RankCtx::end_recovery`].
    pub fn begin_recovery(&mut self) {
        self.recovery_mode = true;
    }

    /// Leave recovery mode (see [`RankCtx::begin_recovery`]).
    pub fn end_recovery(&mut self) {
        self.recovery_mode = false;
    }

    /// Whether this rank is inside a recovery epoch.
    pub fn recovering(&self) -> bool {
        self.recovery_mode
    }

    /// Acknowledge the failure cluster-wide: clear the failed-rank
    /// record and un-revoke the communicator. Called by rank 0 at the
    /// end of the recovery epoch, *before* releasing the recovery
    /// fence, so no rank can leave recovery and still observe the
    /// stale revocation.
    pub fn clear_failure(&self) {
        self.proc.failed_rank.store(usize::MAX, Ordering::SeqCst);
        self.proc.failed_step.store(0, Ordering::SeqCst);
        *self.proc.killed_at.lock() = None;
        self.proc.revoked.store(false, Ordering::SeqCst);
    }

    /// Flush this rank's mailbox of everything whose `(source, tag)`
    /// fails `keep`, recycling the buffers; returns how many messages
    /// were evicted. The recovery epoch calls this after the join
    /// fence — when every pre-failure send has landed (delivery is
    /// eager) — so stale data-plane frames from the aborted step can
    /// never be matched by the replay, while in-flight recovery frames
    /// survive.
    pub fn drain_all_except(&mut self, keep: impl Fn(usize, u64) -> bool) -> usize {
        let evicted = self.mailboxes[self.rank].drain_except(&keep);
        let n = evicted.len();
        for msg in evicted {
            if let Some(owner) = msg.owner {
                self.pools[owner].put(msg.data);
            }
        }
        n
    }

    /// Record a process-fault trace event. The victim's own trace dies
    /// with its first incarnation, so the resilient driver re-records
    /// the kill on the respawned context; stalls are recorded in place
    /// by [`RankCtx::proc_tick`].
    pub fn record_proc_fault_event(&mut self, kind: FaultKind, step: u64, op: u64) {
        self.trace.record_fault(FaultEvent {
            kind,
            src: self.rank,
            dest: self.rank,
            tag: step,
            attempt: op,
            bytes: 0,
        });
    }

    /// Process-fault injection point, called once per data-plane
    /// transport operation (send posts, receive posts, waits, overlap
    /// polls). Ops are counted per armed timestep so a `kill:R@S+OP`
    /// schedule lands at a reproducible point *inside* the step body —
    /// including mid-overlap-window and mid-pready.
    fn proc_tick(&mut self) {
        if self.cur_step == u64::MAX {
            return;
        }
        if let Some(k) = self.kill {
            if k.step == self.cur_step && self.step_ops >= k.op {
                self.die(k.step);
            }
        }
        if let Some(st) = self.stall {
            if st.step == self.cur_step && self.step_ops >= st.op && !self.stall_fired {
                self.stall_fired = true;
                self.bill(Phase::Wait, st.stall_secs);
                self.recorder.count("fault_stalls", 1);
                self.record_proc_fault_event(FaultKind::Stall, st.step, st.op);
            }
        }
        self.step_ops += 1;
    }

    /// Crash-stop this rank: publish the failure, make in-flight
    /// traffic to it vanish, wake every blocked peer so the failure
    /// detector can run, and unwind via a [`KillSentinel`] panic that
    /// the runner's respawn loop catches.
    fn die(&mut self, step: u64) -> ! {
        self.proc.dead[self.rank].store(true, Ordering::SeqCst);
        self.proc.failed_rank.store(self.rank, Ordering::SeqCst);
        self.proc.failed_step.store(step, Ordering::SeqCst);
        *self.proc.killed_at.lock() = Some(Instant::now());
        self.proc.revoked.store(true, Ordering::SeqCst);
        // The victim's queued data-plane messages vanish with it;
        // recycle their buffers so the owners' pools keep circulating.
        // Control-plane traffic (fault-exempt by construction) is
        // preserved: a survivor that detects the failure first may
        // already have posted recovery-protocol frames to this mailbox,
        // and eating them would deadlock the join fence. Stale control
        // frames are purged by the recovery epoch's own drain instead.
        let stale = self.mailboxes[self.rank].drain_except(&|_, tag| tag & CTRL_TAG_BIT != 0);
        for msg in stale {
            if let Some(owner) = msg.owner {
                self.pools[owner].put(msg.data);
            }
        }
        match self.runtime {
            Runtime::Thread { .. } => {
                for mb in self.mailboxes {
                    mb.interrupt();
                }
            }
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Runtime::Event { sched } => sched.wake_all(),
        }
        // `resume_unwind` rather than `panic_any`: the unwind is the
        // modeled crash, not a program bug, so the process-global panic
        // hook (message + backtrace on stderr) must not fire for it.
        std::panic::resume_unwind(Box::new(KillSentinel));
    }

    /// Charge the send-side wire model for one message of `bytes`
    /// payload: `o` seconds of `call`, message/byte counters, epoch
    /// accounting (skipped for deferred sends, whose `wait` the caller
    /// settles itself), and the trace event.
    fn charge_send(&mut self, peer: usize, tag: u64, bytes: usize, epoch: bool) {
        self.bill(Phase::Wire, self.net_to(peer).call_time(1));
        self.timers.msgs += 1;
        self.timers.wire_bytes += bytes as u64;
        if epoch {
            if self.on_node(peer) {
                self.epoch_msgs_on += 1;
                self.epoch_bytes_on += bytes;
            } else {
                self.epoch_msgs += 1;
                self.epoch_bytes += bytes;
            }
        }
        self.recorder.count("msgs_sent", 1);
        self.recorder.observe("send_bytes", bytes as f64);
        self.trace.record(MsgEvent { send: true, peer, tag, bytes });
    }

    /// Post a nonblocking send of `data` to rank `dest` with `tag`.
    /// Charges `o` seconds of `call` time; the copy into the message
    /// stands in for NIC DMA and is not charged to any on-node timer.
    ///
    /// When a fault plan is armed the message may be deterministically
    /// dropped, duplicated, corrupted or delayed; every injected fault
    /// is recorded in the [`Trace`] fault log.
    pub fn isend(&mut self, dest: usize, tag: u64, data: &[f64]) -> Result<(), NetsimError> {
        self.isend_impl(dest, tag, data, true)
    }

    /// Post a nonblocking send whose LogGP `wait` term is *deferred*:
    /// the fragment is charged `o` seconds of `call` and counted like
    /// any other message, but it does not join the current send epoch —
    /// the caller owns its serialization cost and settles it later (see
    /// [`crate::partition::PartitionedSend`], which drains fragment
    /// bandwidth behind subsequently billed compute and bills only the
    /// residual). Fault plans apply exactly as for [`RankCtx::isend`].
    pub fn isend_deferred(
        &mut self,
        dest: usize,
        tag: u64,
        data: &[f64],
    ) -> Result<(), NetsimError> {
        self.isend_impl(dest, tag, data, false)
    }

    fn isend_impl(
        &mut self,
        dest: usize,
        tag: u64,
        data: &[f64],
        epoch: bool,
    ) -> Result<(), NetsimError> {
        if dest >= self.topo.size() {
            return Err(NetsimError::InvalidRank { rank: dest, size: self.topo.size() });
        }
        self.proc_tick();
        let bytes = std::mem::size_of_val(data);
        self.charge_send(dest, tag, bytes, epoch);
        // A data-plane send to a dead rank vanishes (its NIC is gone).
        // The call cost above is still billed: the sender cannot know
        // yet. Control-plane sends are fault-exempt and still land in
        // the mailbox — it outlives the incarnation, and the recovery
        // protocol's join fence depends on tokens posted in the window
        // between the crash and the respawn.
        if self.proc.dead[dest].load(Ordering::SeqCst) && tag & CTRL_TAG_BIT == 0 {
            return Ok(());
        }
        let decision = match self.fault.as_mut() {
            Some(plan) if !self.fault_bypass => plan.decide(dest, tag, data.len()),
            _ => FaultDecision::default(),
        };
        if decision.any() {
            self.apply_send_faults(dest, tag, bytes, &decision);
        }
        if decision.drop {
            return Ok(());
        }
        let mut msg = if self.pooling {
            let mut buf = self.pools[self.rank].take();
            if buf.capacity() < data.len() {
                self.transport_allocs += 1;
            }
            buf.extend_from_slice(data);
            Msg { owner: Some(self.rank), data: buf }
        } else {
            self.transport_allocs += 1;
            Msg { owner: None, data: data.to_vec() }
        };
        if let Some((word, mask)) = decision.corrupt {
            let bits = msg.data[word].to_bits() ^ mask;
            msg.data[word] = f64::from_bits(bits);
        }
        if decision.dup {
            // The duplicate is a plain allocation outside the pool: a
            // fault path must not perturb the steady-state pool census.
            self.transport_allocs += 1;
            self.mailboxes[dest].push((self.rank, tag), Msg { owner: None, data: msg.data.clone() });
        }
        self.mailboxes[dest].push((self.rank, tag), msg);
        self.notify_peer(dest);
        Ok(())
    }

    /// Record fault events and charge the delay penalty.
    fn apply_send_faults(&mut self, dest: usize, tag: u64, bytes: usize, d: &FaultDecision) {
        let record = |kind: FaultKind, trace: &mut Trace, rank: usize| {
            trace.record_fault(FaultEvent { kind, src: rank, dest, tag, attempt: d.attempt, bytes });
        };
        if d.delay_secs > 0.0 {
            self.bill(Phase::Wait, d.delay_secs);
            self.recorder.count("fault_delays", 1);
            record(FaultKind::Delay, &mut self.trace, self.rank);
        }
        if d.drop {
            record(FaultKind::Drop, &mut self.trace, self.rank);
            return;
        }
        if d.corrupt.is_some() {
            record(FaultKind::Corrupt, &mut self.trace, self.rank);
        }
        if d.dup {
            record(FaultKind::Duplicate, &mut self.trace, self.rank);
        }
    }

    /// Loopback fast path for a self-send whose source and destination
    /// live in the *same* slice: copy `data[src]` to `data[dst..]` once
    /// (the NIC-DMA stand-in, not charged to any on-node timer) while
    /// charging the wire model exactly as `isend` + `irecv` would.
    /// `src` and the destination region must not overlap. On-node
    /// copies never traverse the fabric, so fault plans do not apply.
    pub fn loopback_within(
        &mut self,
        tag: u64,
        data: &mut [f64],
        src: Range<usize>,
        dst: usize,
    ) -> Result<(), NetsimError> {
        if dst + src.len() > data.len() {
            return Err(NetsimError::LoopbackMismatch {
                rank: self.rank,
                tag,
                src_len: src.len(),
                dst_len: data.len().saturating_sub(dst),
            });
        }
        let bytes = src.len() * std::mem::size_of::<f64>();
        self.charge_send(self.rank, tag, bytes, true);
        // The matching receive post, as `irecv` would charge it.
        self.bill(Phase::Wire, self.net_to(self.rank).call_time(1));
        data.copy_within(src, dst);
        self.trace.record(MsgEvent { send: false, peer: self.rank, tag, bytes });
        Ok(())
    }

    /// Loopback fast path for a self-send between two distinct slices
    /// (e.g. an mmap view source and the backing storage): one copy,
    /// full wire-model accounting. Lengths must match exactly.
    pub fn loopback_into(
        &mut self,
        tag: u64,
        src: &[f64],
        dst: &mut [f64],
    ) -> Result<(), NetsimError> {
        if src.len() != dst.len() {
            return Err(NetsimError::LoopbackMismatch {
                rank: self.rank,
                tag,
                src_len: src.len(),
                dst_len: dst.len(),
            });
        }
        let bytes = std::mem::size_of_val(src);
        self.charge_send(self.rank, tag, bytes, true);
        self.bill(Phase::Wire, self.net_to(self.rank).call_time(1));
        dst.copy_from_slice(src);
        self.trace.record(MsgEvent { send: false, peer: self.rank, tag, bytes });
        Ok(())
    }

    /// Post a nonblocking receive from `source` with `tag`. Charges `o`
    /// seconds of `call` time.
    pub fn irecv(&mut self, source: usize, tag: u64) -> Result<RecvHandle, NetsimError> {
        if source >= self.topo.size() {
            return Err(NetsimError::InvalidRank { rank: source, size: self.topo.size() });
        }
        self.proc_tick();
        self.bill(Phase::Wire, self.net_to(source).call_time(1));
        Ok(RecvHandle { source, tag })
    }

    /// Diagnostic dump of this rank's unmatched mailbox contents:
    /// `(source, tag, queued)` per non-empty queue, sorted. Protocol
    /// layers embed this in [`NetsimError::Timeout`] so a hung chaos
    /// run reports what arrived-but-unwanted, the deadlock detector's
    /// first question.
    pub fn mailbox_keys(&self) -> Vec<(usize, u64, usize)> {
        self.mailboxes[self.rank].unmatched_keys()
    }

    /// Backend-routed blocking pop from this rank's mailbox. `None` =
    /// the deadline expired (or the cluster aborted) before a match.
    ///
    /// Thread backend: condvar wait with a real wall-clock deadline.
    /// Event backend: arm a mailbox wake, re-poll (the push may already
    /// have landed — delivery is eager), then park. The deadline is
    /// *virtual*: it fires only at scheduler quiescence, i.e. exactly
    /// when the awaited message provably cannot arrive any more, so a
    /// lossy chaos run times out instantly instead of sleeping.
    fn blocking_pop(&self, key: Key, deadline: Option<Instant>) -> Option<Msg> {
        let mb = &self.mailboxes[self.rank];
        // Outside recovery mode a revoked communicator stops every
        // blocking wait — that is the failure detector: the caller maps
        // the miss to `RankFailed` via `rank_failure()`. Recovery-mode
        // waits ignore revocation (the recovery protocol's own frames
        // must flow on the revoked communicator).
        let abort = self.abort;
        let proc = self.proc;
        let recovering = self.recovery_mode;
        let stopped = move || {
            abort.load(Ordering::SeqCst)
                || (!recovering && proc.revoked.load(Ordering::SeqCst))
        };
        match self.runtime {
            Runtime::Thread { .. } => mb.pop_deadline(key, deadline, &stopped),
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Runtime::Event { sched } => loop {
                if let Some(m) = mb.try_pop(key) {
                    return Some(m);
                }
                if stopped() {
                    return None;
                }
                sched.arm_mailbox(self.rank);
                // Close the arm/push race: the push may have landed
                // between the miss above and the arm.
                if let Some(m) = mb.try_pop(key) {
                    sched.disarm_mailbox(self.rank);
                    return Some(m);
                }
                if sched.park(self.rank as u32, deadline) == crate::event::Wake::Expired {
                    sched.disarm_mailbox(self.rank);
                    return mb.try_pop(key);
                }
            },
        }
    }

    /// One unproductive tick of a hand-rolled spin loop: advance the
    /// process-fault schedule (so a kill/stall scheduled at this point
    /// fires even while the rank only waits) and yield to peers on the
    /// cooperative event backend. Bills nothing. Protocols that poll
    /// [`RankCtx::mailbox_keys`] directly (rather than spinning on
    /// `try_wait`, which ticks internally) must call this on every
    /// empty poll or they starve the producers they wait on.
    pub fn idle_tick(&mut self) {
        self.proc_tick();
        self.poll_miss();
    }

    /// Give other ranks CPU time after an unproductive poll. The event
    /// backend is cooperative: a spin-polling rank (overlap `try_wait`
    /// / `progress` loops) must yield on a miss or it starves the very
    /// producers it is waiting on. The thread backend relies on kernel
    /// preemption and does nothing.
    fn poll_miss(&self) {
        match self.runtime {
            Runtime::Thread { .. } => {}
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Runtime::Event { sched } => sched.yield_now(),
        }
    }

    /// Wake `dest` if it is parked waiting on its mailbox (event
    /// backend; pushes under the thread backend signal the mailbox
    /// condvar directly).
    fn notify_peer(&self, dest: usize) {
        match self.runtime {
            Runtime::Thread { .. } => {}
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Runtime::Event { sched } => {
                if dest != self.rank {
                    sched.notify_mailbox(dest);
                }
            }
        }
    }

    /// Complete one posted receive, blocking until `deadline` (`None`
    /// = the message never arrived in time — *not* an error here: retry
    /// protocols treat a miss as "still pending" and re-request). The
    /// frame is handed back raw so callers can verify checksums and
    /// sequence trailers; recycle it with [`RankCtx::recycle`].
    pub fn recv_deadline(&mut self, h: RecvHandle, deadline: Instant) -> Option<RecvdMsg> {
        self.proc_tick();
        let msg = self.blocking_pop((h.source, h.tag), Some(deadline))?;
        self.trace.record(MsgEvent {
            send: false,
            peer: h.source,
            tag: h.tag,
            bytes: msg.data.len() * 8,
        });
        Some(RecvdMsg { owner: msg.owner, data: msg.data })
    }

    /// Complete one posted receive, blocking until it arrives (or until
    /// the armed receive deadline — see [`RankCtx::set_recv_timeout`] —
    /// expires, which is a [`NetsimError::Timeout`]). Bills nothing and
    /// leaves the send epoch open; the frame is handed back raw, so
    /// recycle it with [`RankCtx::recycle`].
    pub fn recv_blocking(&mut self, h: RecvHandle) -> Result<RecvdMsg, NetsimError> {
        self.proc_tick();
        let deadline = self.recv_timeout.map(|t| Instant::now() + t);
        let Some(msg) = self.blocking_pop((h.source, h.tag), deadline) else {
            if !self.recovery_mode {
                if let Some(e) = self.rank_failure() {
                    return Err(e);
                }
            }
            return Err(NetsimError::Timeout {
                rank: self.rank,
                pending: vec![(h.source, h.tag)],
                mailbox: self.mailbox_keys(),
            });
        };
        self.trace.record(MsgEvent {
            send: false,
            peer: h.source,
            tag: h.tag,
            bytes: msg.data.len() * 8,
        });
        Ok(RecvdMsg { owner: msg.owner, data: msg.data })
    }

    /// Return a completed message's buffer to its owner's pool.
    pub fn recycle(&mut self, msg: RecvdMsg) {
        if let Some(owner) = msg.owner {
            self.pools[owner].put(msg.data);
        }
    }

    /// Non-blocking completion probe for one posted receive: pop the
    /// matching message if it has already arrived, else return `None`
    /// immediately. Never blocks, bills nothing, and leaves the send
    /// epoch open — the overlap scheduler polls this between interior
    /// compute batches and the eventual `waitall_*` (or
    /// [`RankCtx::flush_epoch`]) still charges the epoch's LogGP `wait`
    /// term exactly once. A loopback or an already-delivered self-send
    /// completes on the first probe.
    ///
    /// Each message is returned exactly once: a `Some` consumes the
    /// mailbox entry, so probing the same handle again waits for the
    /// *next* message on that channel (non-overtaking order).
    pub fn try_wait(&mut self, h: RecvHandle) -> Option<RecvdMsg> {
        self.proc_tick();
        let Some(msg) = self.mailboxes[self.rank].try_pop((h.source, h.tag)) else {
            self.poll_miss();
            return None;
        };
        self.trace.record(MsgEvent {
            send: false,
            peer: h.source,
            tag: h.tag,
            bytes: msg.data.len() * 8,
        });
        Some(RecvdMsg { owner: msg.owner, data: msg.data })
    }

    /// Drive a batch of posted receives forward without blocking:
    /// for every handle not yet marked in `done`, pop its message if
    /// present, verify its length against `ranges[i]`, scatter it into
    /// `storage[ranges[i]]`, recycle the buffer, flag `done[i]`, and
    /// push `i` onto `completed`. Returns how many receives newly
    /// completed this call.
    ///
    /// Partial-completion semantics: buffers are consumed exactly once
    /// (a completed index is skipped on later calls), nothing is billed
    /// and the send epoch stays open — close it via the finishing
    /// `waitall_ranges` over the still-pending subset (or
    /// [`RankCtx::flush_epoch`] once everything completed), so the
    /// LogGP `wait` lump and the deadline machinery keep their phased
    /// semantics. A wrong-length message reports
    /// [`NetsimError::SizeMismatch`] after recycling it.
    pub fn progress(
        &mut self,
        handles: &[RecvHandle],
        storage: &mut [f64],
        ranges: &[Range<usize>],
        done: &mut [bool],
        completed: &mut Vec<usize>,
    ) -> Result<usize, NetsimError> {
        assert_eq!(handles.len(), ranges.len());
        assert_eq!(handles.len(), done.len());
        self.proc_tick();
        // Failure detection on the overlap path: a poll loop spinning
        // on `progress` would otherwise never observe the revocation.
        if !self.recovery_mode && self.revoked() {
            if let Some(e) = self.rank_failure() {
                return Err(e);
            }
        }
        let mut newly = 0usize;
        for (i, h) in handles.iter().enumerate() {
            if done[i] {
                continue;
            }
            let Some(msg) = self.mailboxes[self.rank].try_pop((h.source, h.tag)) else {
                continue;
            };
            if msg.data.len() != ranges[i].len() {
                let err = NetsimError::SizeMismatch {
                    rank: self.rank,
                    source: h.source,
                    tag: h.tag,
                    expected: ranges[i].len(),
                    got: msg.data.len(),
                };
                if let Some(owner) = msg.owner {
                    self.pools[owner].put(msg.data);
                }
                return Err(err);
            }
            self.trace.record(MsgEvent {
                send: false,
                peer: h.source,
                tag: h.tag,
                bytes: msg.data.len() * 8,
            });
            storage[ranges[i].clone()].copy_from_slice(&msg.data);
            if let Some(owner) = msg.owner {
                self.pools[owner].put(msg.data);
            }
            done[i] = true;
            completed.push(i);
            newly += 1;
        }
        if newly == 0 {
            self.poll_miss();
        }
        Ok(newly)
    }

    /// Evict every queued message for `(source, tag)` — stale
    /// duplicates and late retries left behind by a reliable exchange —
    /// recycling their buffers. Returns how many were evicted. Without
    /// this, duplicate storms grow the mailbox without bound.
    pub fn drain_mailbox(&mut self, source: usize, tag: u64) -> usize {
        let stale = self.mailboxes[self.rank].drain((source, tag));
        let n = stale.len();
        for msg in stale {
            if let Some(owner) = msg.owner {
                self.pools[owner].put(msg.data);
            }
        }
        n
    }

    /// Block until every posted receive has a matching message, moving
    /// them into `recv_scratch` in handle order and recording trace
    /// events. Honors the armed receive deadline and reports
    /// [`NetsimError::Timeout`] / [`NetsimError::SizeMismatch`].
    fn complete_recvs(
        &mut self,
        handles: &[RecvHandle],
        expect_len: impl Fn(usize) -> usize,
    ) -> Result<(), NetsimError> {
        self.recv_scratch.clear();
        self.proc_tick();
        let deadline = self.recv_timeout.map(|t| Instant::now() + t);
        for (i, h) in handles.iter().enumerate() {
            let Some(msg) = self.blocking_pop((h.source, h.tag), deadline) else {
                self.recycle_scratch();
                if !self.recovery_mode {
                    if let Some(e) = self.rank_failure() {
                        return Err(e);
                    }
                }
                let pending = handles[i..]
                    .iter()
                    .take(MAX_DIAG_KEYS)
                    .map(|h| (h.source, h.tag))
                    .collect();
                let mailbox = self.mailboxes[self.rank].unmatched_keys();
                return Err(NetsimError::Timeout { rank: self.rank, pending, mailbox });
            };
            if msg.data.len() != expect_len(i) {
                let err = NetsimError::SizeMismatch {
                    rank: self.rank,
                    source: h.source,
                    tag: h.tag,
                    expected: expect_len(i),
                    got: msg.data.len(),
                };
                self.recv_scratch.push(msg);
                self.recycle_scratch();
                return Err(err);
            }
            self.trace.record(MsgEvent {
                send: false,
                peer: h.source,
                tag: h.tag,
                bytes: msg.data.len() * 8,
            });
            self.recv_scratch.push(msg);
        }
        Ok(())
    }

    /// Charge the LogGP `wait` term for this epoch's posted sends and
    /// close the epoch. A hierarchical run waits on both tiers: the
    /// fabric drains the off-node portion while shared memory drains
    /// the on-node portion; the two proceed serially on the posting
    /// core, so the terms add. A flat run performs the identical
    /// single-term arithmetic as always (the intra term is absent, not
    /// zero-valued — flat billing stays bit-identical).
    fn close_epoch(&mut self) {
        let mut wait = self.net.wait_time(self.epoch_msgs, self.epoch_bytes);
        if let Some((intra, _)) = self.hier {
            wait += intra.wait_time(self.epoch_msgs_on, self.epoch_bytes_on);
            self.epoch_msgs_on = 0;
            self.epoch_bytes_on = 0;
        }
        self.bill(Phase::Wait, wait);
        self.epoch_msgs = 0;
        self.epoch_bytes = 0;
    }

    /// Public epoch close for protocol layers that complete receives
    /// via [`RankCtx::recv_deadline`] instead of `waitall_*`: charges
    /// the LogGP `wait` term for the sends posted since the last close.
    pub fn flush_epoch(&mut self) {
        self.close_epoch();
    }

    /// Return completed message buffers to their owners' pools.
    fn recycle_scratch(&mut self) {
        let pools = self.pools;
        for msg in self.recv_scratch.drain(..) {
            if let Some(owner) = msg.owner {
                pools[owner].put(msg.data);
            }
        }
    }

    /// Complete all posted receives, copying each message into its
    /// destination buffer (buffers parallel to `handles`; lengths must
    /// match exactly). Charges the LogGP `wait` term for this epoch's
    /// posted sends, then closes the epoch.
    ///
    /// With a receive deadline armed (see
    /// [`RankCtx::set_recv_timeout`]), an unmatched receive returns
    /// [`NetsimError::Timeout`] instead of blocking forever; a
    /// wrong-length message returns [`NetsimError::SizeMismatch`]. The
    /// epoch is closed either way so wire accounting stays consistent.
    pub fn waitall_into(
        &mut self,
        handles: &[RecvHandle],
        bufs: &mut [&mut [f64]],
    ) -> Result<(), NetsimError> {
        assert_eq!(handles.len(), bufs.len());
        if let Err(e) = self.complete_recvs(handles, |i| bufs[i].len()) {
            self.close_epoch();
            return Err(e);
        }
        let total: usize = self.recv_scratch.iter().map(|m| m.data.len() * 8).sum();
        if total >= PAR_COPY_MIN_BYTES {
            use rayon::prelude::*;
            bufs.par_iter_mut()
                .zip(self.recv_scratch.par_iter())
                .for_each(|(buf, msg)| buf.copy_from_slice(&msg.data));
        } else {
            for (buf, msg) in bufs.iter_mut().zip(self.recv_scratch.iter()) {
                buf.copy_from_slice(&msg.data);
            }
        }
        self.recycle_scratch();
        self.close_epoch();
        Ok(())
    }

    /// Complete all posted receives directly into sub-ranges of one
    /// backing slice (`ranges` parallel to `handles`, sorted and
    /// disjoint), then charge `wait` and close the epoch. This is the
    /// persistent-exchange completion path: no per-call allocation, and
    /// the disjoint ghost copies run in parallel for large epochs.
    ///
    /// Calling with empty `handles` still closes the epoch — a rank
    /// whose sends were all loopbacks uses this to charge `wait`.
    /// Deadline and error semantics match [`RankCtx::waitall_into`].
    pub fn waitall_ranges(
        &mut self,
        handles: &[RecvHandle],
        storage: &mut [f64],
        ranges: &[Range<usize>],
    ) -> Result<(), NetsimError> {
        assert_eq!(handles.len(), ranges.len());
        if let Err(e) = self.complete_recvs(handles, |i| ranges[i].len()) {
            self.close_epoch();
            return Err(e);
        }
        let total: usize = ranges.iter().map(|r| r.len() * 8).sum();
        if total >= PAR_COPY_MIN_BYTES {
            scatter_parallel(storage, 0, ranges, &self.recv_scratch);
        } else {
            for (r, msg) in ranges.iter().zip(self.recv_scratch.iter()) {
                storage[r.clone()].copy_from_slice(&msg.data);
            }
        }
        self.recycle_scratch();
        self.close_epoch();
        Ok(())
    }

    /// Record payload bytes (the non-padding fraction of the wire bytes)
    /// for bandwidth accounting.
    pub fn note_payload(&mut self, bytes: usize) {
        self.timers.payload_bytes += bytes as u64;
    }

    /// Charge additional modeled seconds to `wait` (used by the GPU
    /// paths to account for staging or page migration on the wire side).
    pub fn charge_wait(&mut self, secs: f64) {
        self.bill(Phase::Wait, secs);
    }

    /// Charge additional *modeled* seconds to `calc` (used by the GPU
    /// roofline, whose kernels run on the host but are billed as device
    /// time).
    pub fn charge_calc(&mut self, secs: f64) {
        self.bill(Phase::Compute, secs);
    }

    /// Charge additional modeled seconds to `pack`.
    pub fn charge_pack(&mut self, secs: f64) {
        self.bill(Phase::Pack, secs);
    }

    /// Charge modeled compute seconds *attributed to a brick*: the time
    /// lands on `calc` exactly like [`RankCtx::charge_calc`], and — when
    /// profiling is on — is additionally credited to `brick` on the
    /// recorder, feeding the per-brick cost signal a load balancer
    /// harvests.
    pub fn charge_calc_brick(&mut self, brick: u32, secs: f64) {
        self.bill(Phase::Compute, secs);
        self.recorder.charge_brick(brick, secs);
    }

    /// Synchronize all ranks. Returns silently even if the cluster is
    /// aborting (a peer panicked): the surviving ranks are being
    /// unwound via timeout errors, not blocked forever.
    pub fn barrier(&self) {
        // A revoked communicator cannot complete a rendezvous (the
        // failed rank is dead or mid-respawn): return silently, like
        // the abort path. Resilient drivers synchronize through their
        // own revocation-aware fence instead.
        if self.proc.revoked.load(Ordering::SeqCst) {
            return;
        }
        match self.runtime {
            Runtime::Thread { barrier } => {
                barrier.wait();
            }
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Runtime::Event { sched } => {
                sched.barrier_wait(self.rank as u32);
            }
        }
    }

    /// Snapshot of the accumulated timers.
    pub fn timers(&self) -> Timers {
        self.timers
    }

    /// Zero the timers (e.g. after warmup steps). Also rewinds the
    /// profiling recorder so timelines cover exactly the timed steps.
    pub fn reset_timers(&mut self) {
        self.timers.reset();
        self.recorder.reset();
    }

    /// Start recording a message trace (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    /// Drain the recorded message events.
    pub fn take_trace(&mut self) -> Vec<MsgEvent> {
        self.trace.take()
    }

    /// Drain the recorded fault-injection events (always recorded when
    /// a fault plan is armed, independent of the message trace).
    pub fn take_fault_events(&mut self) -> Vec<FaultEvent> {
        self.trace.take_faults()
    }
}

/// Copy `msgs[i]` into `storage[ranges[i]]` for sorted, disjoint
/// ranges, fork/joining on the range list so the disjoint ghost copies
/// run in parallel without any allocation. `base` is the element index
/// of `storage[0]` in the original slice.
fn scatter_parallel(storage: &mut [f64], base: usize, ranges: &[Range<usize>], msgs: &[Msg]) {
    debug_assert_eq!(ranges.len(), msgs.len());
    if ranges.len() <= 1 {
        if let (Some(r), Some(msg)) = (ranges.first(), msgs.first()) {
            storage[r.start - base..r.end - base].copy_from_slice(&msg.data);
        }
        return;
    }
    let mid = ranges.len() / 2;
    let split = ranges[mid].start;
    assert!(
        split >= ranges[mid - 1].end && split >= base,
        "ranges must be sorted and disjoint"
    );
    let (lo, hi) = storage.split_at_mut(split - base);
    rayon::join(
        || scatter_parallel(lo, base, &ranges[..mid], &msgs[..mid]),
        || scatter_parallel(hi, split, &ranges[mid..], &msgs[mid..]),
    );
}

/// Which cluster substrate to run ranks on. See the module docs; the
/// two backends are observationally equivalent (bit-identical results
/// and modeled timers), they differ only in how far they scale and how
/// blocking is implemented.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// One OS thread per rank (the reference backend).
    #[default]
    Thread,
    /// Event-driven rank multiplexing on a worker pool
    /// ([`crate::event`]). Falls back to `Thread` (with a warning) on
    /// platforms without the task substrate (non-x86-64 / non-Linux).
    Event,
}

impl Backend {
    /// Parse `"thread"` / `"event"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "thread" | "threads" => Some(Backend::Thread),
            "event" | "events" => Some(Backend::Event),
            _ => None,
        }
    }

    /// Backend selected by the `NETSIM_BACKEND` environment variable,
    /// defaulting to [`Backend::Thread`]. This is what the convenience
    /// runners ([`run_cluster`], [`run_cluster_faulty`]) use, so an
    /// entire existing test suite can be re-run on the event backend by
    /// exporting `NETSIM_BACKEND=event`.
    pub fn from_env() -> Backend {
        match std::env::var("NETSIM_BACKEND") {
            Ok(v) => Backend::parse(&v).unwrap_or_default(),
            Err(_) => Backend::Thread,
        }
    }

    /// Whether the event backend's task substrate is compiled in on
    /// this platform.
    pub fn event_supported() -> bool {
        cfg!(all(target_os = "linux", target_arch = "x86_64"))
    }

    /// Stable lowercase name (used in bench JSON and CLI output).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Thread => "thread",
            Backend::Event => "event",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Backend, String> {
        Backend::parse(s).ok_or_else(|| format!("unknown backend {s:?} (want thread|event)"))
    }
}

/// Render a caught panic payload for [`NetsimError::RankPanicked`].
fn payload_string(p: Box<dyn std::any::Any + Send>) -> String {
    match p.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<opaque panic payload>".to_string(),
        },
    }
}

/// Build the per-rank context; shared verbatim by both backends so
/// modeled billing cannot diverge between them.
#[allow(clippy::too_many_arguments)]
fn rank_ctx<'a>(
    rank: usize,
    topo: &'a CartTopo,
    net: HierarchicalNetworkModel,
    faults: FaultConfig,
    mailboxes: &'a [Mailbox],
    pools: &'a [BufferPool],
    runtime: Runtime<'a>,
    abort: &'a AtomicBool,
    proc: &'a ProcState,
    incarnation: usize,
) -> RankCtx<'a> {
    let fault = faults.is_active().then(|| FaultPlan::new(faults, rank));
    let net = match &fault {
        Some(plan) => net.slowed(plan.slowdown()),
        None => net,
    };
    // Flat topologies (including every `NetworkModel` converted via
    // `From`) carry no hier state, so their billing code path — and
    // its float arithmetic — is exactly the pre-hierarchy one.
    let hier = (!net.is_flat()).then_some((net.intra, net.node));
    // Process faults fire only in a rank's first incarnation: a
    // respawned rank must not be re-killed, and a replayed step must
    // not re-stall.
    let first = incarnation == 0;
    RankCtx {
        rank,
        topo,
        net: net.inter,
        mailboxes,
        pools,
        runtime,
        abort,
        timers: Timers::default(),
        trace: Trace::default(),
        recorder: Recorder::disabled(),
        epoch_msgs: 0,
        epoch_bytes: 0,
        hier,
        epoch_msgs_on: 0,
        epoch_bytes_on: 0,
        recv_scratch: Vec::new(),
        pooling: true,
        transport_allocs: 0,
        fault,
        fault_bypass: false,
        recv_timeout: None,
        proc,
        kill: faults.kill.filter(|k| first && k.rank == rank),
        stall: faults.stall.filter(|s| first && s.rank == rank),
        cur_step: u64::MAX,
        step_ops: 0,
        stall_fired: false,
        recovery_mode: false,
        incarnation,
        detect_latency: None,
    }
}

/// Run `body` once per rank of `topo` on the backend selected by
/// `NETSIM_BACKEND` (default: thread-per-rank) and collect the per-rank
/// results in rank order. Panics with the [`NetsimError::RankPanicked`]
/// report if a rank body panics; use [`try_run_cluster`] to get it as
/// a value.
pub fn run_cluster<R, F>(
    topo: &CartTopo,
    net: impl Into<HierarchicalNetworkModel>,
    body: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx<'_>) -> R + Sync,
{
    run_cluster_faulty(topo, net, FaultConfig::off(), body)
}

/// Like [`run_cluster`], but returns the structured error instead of
/// panicking when a rank body panics.
pub fn try_run_cluster<R, F>(
    topo: &CartTopo,
    net: impl Into<HierarchicalNetworkModel>,
    body: F,
) -> Result<Vec<R>, NetsimError>
where
    R: Send,
    F: Fn(&mut RankCtx<'_>) -> R + Sync,
{
    try_run_cluster_on(Backend::from_env(), topo, net, FaultConfig::off(), body)
}

/// Like [`run_cluster`], but with a seeded [`FaultConfig`] armed: every
/// rank derives a deterministic [`FaultPlan`] and its wire model is
/// scaled by the plan's per-rank slowdown factor.
pub fn run_cluster_faulty<R, F>(
    topo: &CartTopo,
    net: impl Into<HierarchicalNetworkModel>,
    faults: FaultConfig,
    body: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx<'_>) -> R + Sync,
{
    run_cluster_on(Backend::from_env(), topo, net, faults, body)
}

/// [`run_cluster_faulty`] with the structured-error contract of
/// [`try_run_cluster`].
pub fn try_run_cluster_faulty<R, F>(
    topo: &CartTopo,
    net: impl Into<HierarchicalNetworkModel>,
    faults: FaultConfig,
    body: F,
) -> Result<Vec<R>, NetsimError>
where
    R: Send,
    F: Fn(&mut RankCtx<'_>) -> R + Sync,
{
    try_run_cluster_on(Backend::from_env(), topo, net, faults, body)
}

/// Run a cluster on an explicitly chosen [`Backend`]. Panics with the
/// structured report if a rank body panics.
pub fn run_cluster_on<R, F>(
    backend: Backend,
    topo: &CartTopo,
    net: impl Into<HierarchicalNetworkModel>,
    faults: FaultConfig,
    body: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx<'_>) -> R + Sync,
{
    match try_run_cluster_on(backend, topo, net, faults, body) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Run a cluster on an explicitly chosen [`Backend`], reporting a rank
/// panic as [`NetsimError::RankPanicked`] (first panic observed = root
/// cause; the remaining ranks are woken and unwound, not abandoned).
pub fn try_run_cluster_on<R, F>(
    backend: Backend,
    topo: &CartTopo,
    net: impl Into<HierarchicalNetworkModel>,
    faults: FaultConfig,
    body: F,
) -> Result<Vec<R>, NetsimError>
where
    R: Send,
    F: Fn(&mut RankCtx<'_>) -> R + Sync,
{
    let net = net.into();
    match backend {
        Backend::Thread => run_thread_cluster(topo, net, faults, &body),
        Backend::Event => {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            {
                run_event_cluster(topo, net, faults, &body)
            }
            #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
            {
                static WARNED: AtomicBool = AtomicBool::new(false);
                if !WARNED.swap(true, Ordering::SeqCst) {
                    eprintln!(
                        "netsim: event backend not supported on this platform; \
                         falling back to thread backend"
                    );
                }
                run_thread_cluster(topo, net, faults, &body)
            }
        }
    }
}

/// Thread-per-rank runner. A panicking rank is caught at the rank
/// boundary; the abort flag plus mailbox/barrier interrupts unwind the
/// surviving ranks (their pending receives report `Timeout`), and the
/// first panic becomes the run's [`NetsimError::RankPanicked`].
fn run_thread_cluster<R, F>(
    topo: &CartTopo,
    net: HierarchicalNetworkModel,
    faults: FaultConfig,
    body: &F,
) -> Result<Vec<R>, NetsimError>
where
    R: Send,
    F: Fn(&mut RankCtx<'_>) -> R + Sync,
{
    let size = topo.size();
    let mailboxes: Vec<Mailbox> = (0..size).map(|_| Mailbox::new()).collect();
    let pools: Vec<BufferPool> = (0..size).map(|_| BufferPool::new()).collect();
    let barrier = AbortableBarrier::new(size);
    let abort = AtomicBool::new(false);
    let proc = ProcState::new(size);
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();

    std::thread::scope(|s| {
        let mut joins = Vec::with_capacity(size);
        for (rank, slot) in results.iter_mut().enumerate() {
            let mailboxes = &mailboxes;
            let pools = &pools;
            let barrier = &barrier;
            let abort = &abort;
            let proc = &proc;
            let panics = &panics;
            joins.push(s.spawn(move || {
                let mut incarnation = 0usize;
                loop {
                    let mut ctx = rank_ctx(
                        rank,
                        topo,
                        net,
                        faults,
                        mailboxes,
                        pools,
                        Runtime::Thread { barrier },
                        abort,
                        proc,
                        incarnation,
                    );
                    match catch_unwind(AssertUnwindSafe(|| body(&mut ctx))) {
                        Ok(r) => {
                            *slot = Some(r);
                            break;
                        }
                        Err(p) if p.is::<KillSentinel>() => {
                            // Crash-stop fault: respawn in place with a
                            // fresh incarnation. The resilient driver's
                            // recovery epoch restores the lost state
                            // from the buddy checkpoint.
                            incarnation += 1;
                            proc.dead[rank].store(false, Ordering::SeqCst);
                        }
                        Err(p) => {
                            panics.lock().push((rank, payload_string(p)));
                            abort.store(true, Ordering::SeqCst);
                            barrier.abort();
                            for mb in mailboxes {
                                mb.interrupt();
                            }
                            break;
                        }
                    }
                }
            }));
        }
        for j in joins {
            // Rank panics are caught inside the closure; a join error
            // here would mean the harness itself failed.
            j.join().expect("rank worker thread lost");
        }
    });

    if let Some((rank, payload)) = panics.into_inner().into_iter().next() {
        return Err(NetsimError::RankPanicked { rank, payload });
    }
    let mut out = Vec::with_capacity(size);
    for (rank, slot) in results.into_iter().enumerate() {
        match slot {
            Some(r) => out.push(r),
            // No panic was recorded, yet this rank never produced a
            // result: report it structurally instead of unwrapping.
            None => {
                return Err(NetsimError::RankPanicked {
                    rank,
                    payload: "rank body never completed (cluster aborted)".into(),
                })
            }
        }
    }
    Ok(out)
}

/// Event-driven runner: one resumable task per rank on a work-stealing
/// worker pool; see [`crate::event`] for the scheduling rules.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn run_event_cluster<R, F>(
    topo: &CartTopo,
    net: HierarchicalNetworkModel,
    faults: FaultConfig,
    body: &F,
) -> Result<Vec<R>, NetsimError>
where
    R: Send,
    F: Fn(&mut RankCtx<'_>) -> R + Sync,
{
    use crate::event::{default_stack_bytes, default_workers, Sched};

    let size = topo.size();
    let mailboxes: Vec<Mailbox> = (0..size).map(|_| Mailbox::new()).collect();
    let pools: Vec<BufferPool> = (0..size).map(|_| BufferPool::new()).collect();
    let abort = AtomicBool::new(false);
    let proc = ProcState::new(size);
    let results: Vec<Mutex<Option<R>>> = (0..size).map(|_| Mutex::new(None)).collect();

    // Rank bodies need `&Sched` (for parking), but the scheduler is
    // built *from* the bodies. Tasks only ever run inside `sched.run()`,
    // so they can read the pointer through this cell, which is filled
    // right after construction and before `run`.
    let sched_cell = AtomicUsize::new(0);

    {
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..size)
            .map(|rank| {
                let mailboxes = &mailboxes;
                let pools = &pools;
                let abort = &abort;
                let proc = &proc;
                let results = &results;
                let sched_cell = &sched_cell;
                Box::new(move || {
                    // SAFETY: filled with a pointer to the live Sched
                    // before run(); the Sched outlives all its tasks.
                    let sched: &Sched =
                        unsafe { &*(sched_cell.load(Ordering::SeqCst) as *const Sched) };
                    let mut incarnation = 0usize;
                    loop {
                        let mut ctx = rank_ctx(
                            rank,
                            topo,
                            net,
                            faults,
                            mailboxes,
                            pools,
                            Runtime::Event { sched },
                            abort,
                            proc,
                            incarnation,
                        );
                        match catch_unwind(AssertUnwindSafe(|| body(&mut ctx))) {
                            Ok(r) => {
                                *results[rank].lock() = Some(r);
                                break;
                            }
                            Err(p) if p.is::<KillSentinel>() => {
                                // Crash-stop fault: respawn in place
                                // (see the thread runner).
                                incarnation += 1;
                                proc.dead[rank].store(false, Ordering::SeqCst);
                            }
                            // Real panics keep the existing path: the
                            // task harness catches them and the run
                            // reports RankPanicked.
                            Err(p) => std::panic::resume_unwind(p),
                        }
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();

        // SAFETY: `run()` below drives every task to completion (or
        // abandonment after abort) before this scope ends, so the
        // borrows captured by the bodies stay valid for as long as any
        // task can run.
        let sched = unsafe { Sched::new(bodies, default_workers().min(size.max(1)), default_stack_bytes(size)) };
        sched_cell.store(&sched as *const Sched as usize, Ordering::SeqCst);
        sched.run();

        let mut panics = sched.take_panics();
        if !panics.is_empty() {
            let (rank, payload) = panics.remove(0);
            return Err(NetsimError::RankPanicked { rank, payload: payload_string(payload) });
        }
    }

    let mut out = Vec::with_capacity(size);
    for (rank, slot) in results.into_iter().enumerate() {
        match slot.into_inner() {
            Some(r) => out.push(r),
            // A task abandoned by a scheduler abort without a recorded
            // panic: report it structurally instead of unwrapping.
            None => {
                return Err(NetsimError::RankPanicked {
                    rank,
                    payload: "rank body never completed (cluster aborted)".into(),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_exchange_delivers() {
        let topo = CartTopo::new(&[4], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let rank = ctx.rank();
            let right = ctx.topo().neighbor(rank, &[1]).unwrap();
            let left = ctx.topo().neighbor(rank, &[-1]).unwrap();
            let data = vec![rank as f64; 8];
            let h = ctx.irecv(left, 7).unwrap();
            ctx.isend(right, 7, &data).unwrap();
            let mut buf = [0.0; 8];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            buf[0]
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn self_send_loopback() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let h = ctx.irecv(0, 1).unwrap();
            ctx.isend(0, 1, &[5.0, 6.0]).unwrap();
            let mut buf = vec![0.0; 2];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            buf
        });
        assert_eq!(out[0], vec![5.0, 6.0]);
    }

    #[test]
    fn non_overtaking_order() {
        let topo = CartTopo::new(&[2], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(1, 3, &[1.0]).unwrap();
                ctx.isend(1, 3, &[2.0]).unwrap();
                ctx.isend(1, 3, &[3.0]).unwrap();
                Vec::new()
            } else {
                let hs = [
                    ctx.irecv(0, 3).unwrap(),
                    ctx.irecv(0, 3).unwrap(),
                    ctx.irecv(0, 3).unwrap(),
                ];
                let (mut a, mut b, mut c) = ([0.0], [0.0], [0.0]);
                ctx.waitall_into(&hs, &mut [&mut a, &mut b, &mut c]).unwrap();
                vec![a[0], b[0], c[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn timers_account_wire_model() {
        let topo = CartTopo::new(&[2], true);
        let net = NetworkModel::theta_aries();
        let out = run_cluster(&topo, net, |ctx| {
            let peer = 1 - ctx.rank();
            let h = ctx.irecv(peer, 0).unwrap();
            let data = vec![0.0; 1024];
            ctx.isend(peer, 0, &data).unwrap();
            let mut buf = vec![0.0; 1024];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            ctx.timers()
        });
        let t = out[0];
        assert_eq!(t.msgs, 1);
        assert_eq!(t.wire_bytes, 8192);
        // call = 2 posts (send + recv), wait = α + bytes/β.
        assert!((t.call - 2.0 * net.overhead).abs() < 1e-12);
        assert!((t.wait - net.wait_time(1, 8192)).abs() < 1e-12);
    }

    #[test]
    fn timed_phases_accumulate() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            ctx.time_calc(|| std::hint::black_box((0..10000).sum::<u64>()));
            ctx.time_pack(|| std::hint::black_box(vec![0u8; 4096]));
            ctx.timers()
        });
        assert!(out[0].calc > 0.0);
        assert!(out[0].pack > 0.0);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let topo = CartTopo::new(&[4], true);
        let counter = AtomicUsize::new(0);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn mismatched_recv_length_is_structured_error() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let h = ctx.irecv(0, 0).unwrap();
            ctx.isend(0, 0, &[1.0, 2.0]).unwrap();
            let mut buf = [0.0; 3];
            ctx.waitall_into(&[h], &mut [&mut buf[..]])
        });
        assert_eq!(
            out[0],
            Err(NetsimError::SizeMismatch { rank: 0, source: 0, tag: 0, expected: 3, got: 2 })
        );
    }

    #[test]
    fn out_of_range_ranks_are_errors() {
        let topo = CartTopo::new(&[2], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            assert_eq!(
                ctx.isend(9, 0, &[1.0]),
                Err(NetsimError::InvalidRank { rank: 9, size: 2 })
            );
            assert!(matches!(ctx.irecv(5, 0), Err(NetsimError::InvalidRank { rank: 5, .. })));
        });
    }

    #[test]
    fn timeout_reports_pending_and_mailbox_dump() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            // A message nobody will ask for, to exercise the dump...
            ctx.isend(0, 99, &[1.0]).unwrap();
            // ...and a receive nobody will satisfy.
            ctx.set_recv_timeout(Some(Duration::from_millis(10)));
            let h = ctx.irecv(0, 7).unwrap();
            let mut buf = [0.0; 1];
            ctx.waitall_into(&[h], &mut [&mut buf[..]])
        });
        let Err(NetsimError::Timeout { rank, pending, mailbox }) = &out[0] else {
            panic!("expected timeout, got {:?}", out[0]);
        };
        assert_eq!(*rank, 0);
        assert_eq!(pending, &[(0, 7)]);
        assert_eq!(mailbox, &[(0, 99, 1)]);
    }

    #[test]
    fn try_wait_returns_each_message_exactly_once() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let h = ctx.irecv(0, 4).unwrap();
            assert!(ctx.try_wait(h).is_none(), "nothing sent yet");
            ctx.isend(0, 4, &[2.5, 3.5]).unwrap();
            let msg = ctx.try_wait(h).expect("self-send completes immediately");
            assert_eq!(msg.data(), &[2.5, 3.5]);
            ctx.recycle(msg);
            assert!(ctx.try_wait(h).is_none(), "message must be consumed exactly once");
            ctx.flush_epoch();
        });
    }

    #[test]
    fn progress_partially_completes_and_consumes_buffers_once() {
        let topo = CartTopo::new(&[2], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let peer = 1 - ctx.rank();
            if ctx.rank() == 0 {
                // Stagger the two sends around rank 1's first poll.
                ctx.isend(peer, 10, &[1.0, 2.0]).unwrap();
                ctx.barrier(); // rank 1 polls: only tag 10 is in flight
                ctx.barrier(); // rank 1 saw exactly one completion
                ctx.isend(peer, 11, &[3.0, 4.0]).unwrap();
                ctx.flush_epoch();
                Vec::new()
            } else {
                let handles = [ctx.irecv(peer, 10).unwrap(), ctx.irecv(peer, 11).unwrap()];
                let ranges = [0..2, 2..4];
                let mut storage = vec![0.0; 4];
                let mut done = [false, false];
                let mut completed = Vec::new();
                ctx.barrier();
                // Poll until the first message lands (send is async).
                while completed.is_empty() {
                    ctx.progress(&handles, &mut storage, &ranges, &mut done, &mut completed)
                        .unwrap();
                }
                assert_eq!(completed, vec![0]);
                assert_eq!(&storage[..2], &[1.0, 2.0]);
                assert!(done[0] && !done[1]);
                // A repeated poll must not re-deliver the completed index.
                let n = ctx
                    .progress(&handles, &mut storage, &ranges, &mut done, &mut completed)
                    .unwrap();
                assert_eq!(n, 0);
                ctx.barrier();
                while done.iter().any(|d| !d) {
                    ctx.progress(&handles, &mut storage, &ranges, &mut done, &mut completed)
                        .unwrap();
                }
                assert_eq!(completed, vec![0, 1]);
                ctx.flush_epoch();
                storage
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn deadline_still_fires_after_partial_progress() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            // One satisfied channel, one genuinely stuck channel.
            let handles = [ctx.irecv(0, 20).unwrap(), ctx.irecv(0, 21).unwrap()];
            ctx.isend(0, 20, &[7.0]).unwrap();
            let ranges = [0..1, 1..2];
            let mut storage = vec![0.0; 2];
            let mut done = [false, false];
            let mut completed = Vec::new();
            ctx.progress(&handles, &mut storage, &ranges, &mut done, &mut completed).unwrap();
            assert_eq!(completed, vec![0]);
            // The finishing blocking wait over the stuck remainder must
            // still honor the armed deadline.
            ctx.set_recv_timeout(Some(Duration::from_millis(10)));
            ctx.waitall_ranges(&handles[1..], &mut storage, &ranges[1..])
        });
        let Err(NetsimError::Timeout { rank, pending, .. }) = &out[0] else {
            panic!("expected timeout, got {:?}", out[0]);
        };
        assert_eq!(*rank, 0);
        assert_eq!(pending, &[(0, 21)]);
    }

    #[test]
    fn progress_then_waitall_bills_same_wait_as_phased() {
        // The overlap path (progress + finishing waitall over the
        // remainder) must charge exactly the LogGP epoch lump the
        // phased waitall charges: polling bills nothing.
        let topo = CartTopo::new(&[1], true);
        let net = NetworkModel::theta_aries();
        let out = run_cluster(&topo, net, |ctx| {
            let handles = [ctx.irecv(0, 30).unwrap(), ctx.irecv(0, 31).unwrap()];
            ctx.isend(0, 30, &[1.0; 64]).unwrap();
            ctx.isend(0, 31, &[2.0; 64]).unwrap();
            let ranges = [0..64, 64..128];
            let mut storage = vec![0.0; 128];
            let mut done = [false, false];
            let mut completed = Vec::new();
            let wait_before = ctx.timers().wait;
            ctx.progress(&handles, &mut storage, &ranges, &mut done, &mut completed).unwrap();
            assert_eq!(completed, vec![0, 1], "self-sends complete on the first poll");
            assert_eq!(ctx.timers().wait, wait_before, "polling must not bill wait");
            // All receives already done: the empty finishing waitall
            // closes the epoch with the full posted-send totals.
            ctx.waitall_ranges(&[], &mut storage, &[]).unwrap();
            ctx.timers()
        });
        assert!((out[0].wait - net.wait_time(2, 2 * 64 * 8)).abs() < 1e-12);
    }

    #[test]
    fn progress_size_mismatch_is_structured_error() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let handles = [ctx.irecv(0, 40).unwrap()];
            ctx.isend(0, 40, &[1.0, 2.0, 3.0]).unwrap();
            let mut storage = vec![0.0; 2];
            let mut done = [false];
            let mut completed = Vec::new();
            let range = 0..2;
            let r = ctx.progress(
                &handles,
                &mut storage,
                std::slice::from_ref(&range),
                &mut done,
                &mut completed,
            );
            ctx.flush_epoch();
            r
        });
        assert_eq!(
            out[0],
            Err(NetsimError::SizeMismatch { rank: 0, source: 0, tag: 40, expected: 2, got: 3 })
        );
    }

    #[test]
    fn loopback_mismatch_is_error() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let src = [1.0; 4];
            let mut dst = [0.0; 3];
            assert!(matches!(
                ctx.loopback_into(3, &src, &mut dst),
                Err(NetsimError::LoopbackMismatch { src_len: 4, dst_len: 3, .. })
            ));
        });
    }

    #[test]
    fn pooled_buffers_stop_allocating() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let data = vec![1.0; 256];
            let mut buf = vec![0.0; 256];
            // Warm the pool: the first epoch grows a fresh buffer.
            for _ in 0..3 {
                let h = ctx.irecv(0, 9).unwrap();
                ctx.isend(0, 9, &data).unwrap();
                ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            }
            let warm = ctx.transport_allocs();
            assert!(warm >= 1);
            for _ in 0..50 {
                let h = ctx.irecv(0, 9).unwrap();
                ctx.isend(0, 9, &data).unwrap();
                ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            }
            assert_eq!(ctx.transport_allocs(), warm, "steady state must not allocate");
        });
    }

    #[test]
    fn pooling_off_allocates_every_send() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            ctx.set_pooling(false);
            let data = vec![1.0; 64];
            let mut buf = vec![0.0; 64];
            for _ in 0..10 {
                let h = ctx.irecv(0, 2).unwrap();
                ctx.isend(0, 2, &data).unwrap();
                ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            }
            assert_eq!(ctx.transport_allocs(), 10);
        });
    }

    #[test]
    fn loopback_within_matches_mailbox_timers_and_data() {
        let topo = CartTopo::new(&[1], true);
        let net = NetworkModel::theta_aries();
        run_cluster(&topo, net, |ctx| {
            // Mailbox self-send: data[0..4] -> data[8..12].
            let mut a: Vec<f64> = (0..12).map(|i| i as f64).collect();
            let h = ctx.irecv(0, 5).unwrap();
            let payload = a[0..4].to_vec();
            ctx.isend(0, 5, &payload).unwrap();
            ctx.waitall_into(&[h], &mut [&mut a[8..12]]).unwrap();
            let t_mailbox = ctx.timers();
            let a_snapshot = a.clone();
            ctx.reset_timers();

            // Loopback fast path, same shape.
            let mut b: Vec<f64> = (0..12).map(|i| i as f64).collect();
            ctx.loopback_within(5, &mut b, 0..4, 8).unwrap();
            ctx.waitall_ranges(&[], &mut b, &[]).unwrap();
            let t_loop = ctx.timers();

            assert_eq!(a_snapshot, b);
            assert_eq!(t_mailbox.call, t_loop.call);
            assert_eq!(t_mailbox.wait, t_loop.wait);
            assert_eq!(t_mailbox.msgs, t_loop.msgs);
            assert_eq!(t_mailbox.wire_bytes, t_loop.wire_bytes);
        });
    }

    #[test]
    fn loopback_into_copies_and_charges() {
        let topo = CartTopo::new(&[1], true);
        let net = NetworkModel::theta_aries();
        run_cluster(&topo, net, |ctx| {
            let src = vec![3.5; 128];
            let mut dst = vec![0.0; 128];
            ctx.loopback_into(7, &src, &mut dst).unwrap();
            ctx.waitall_ranges(&[], &mut dst, &[]).unwrap();
            assert_eq!(dst, src);
            let t = ctx.timers();
            assert_eq!(t.msgs, 1);
            assert_eq!(t.wire_bytes, 1024);
            assert!((t.call - 2.0 * net.overhead).abs() < 1e-15);
            assert!((t.wait - net.wait_time(1, 1024)).abs() < 1e-15);
        });
    }

    #[test]
    fn waitall_ranges_scatters_into_storage() {
        let topo = CartTopo::new(&[2], true);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let peer = 1 - ctx.rank();
            let me = ctx.rank() as f64;
            let h1 = ctx.irecv(peer, 1).unwrap();
            let h2 = ctx.irecv(peer, 2).unwrap();
            ctx.isend(peer, 1, &[me + 10.0; 4]).unwrap();
            ctx.isend(peer, 2, &[me + 20.0; 4]).unwrap();
            let mut storage = vec![0.0; 16];
            ctx.waitall_ranges(&[h1, h2], &mut storage, &[2..6, 10..14]).unwrap();
            storage
        });
        // Rank 0 received rank 1's payloads.
        assert_eq!(out[0][2..6], [11.0; 4]);
        assert_eq!(out[0][10..14], [21.0; 4]);
        assert_eq!(out[0][0..2], [0.0; 2]);
        assert_eq!(out[1][2..6], [10.0; 4]);
    }

    #[test]
    fn dropped_message_times_out_with_empty_mailbox() {
        let topo = CartTopo::new(&[1], true);
        let cfg = FaultConfig { seed: 1, drop: 1.0, ..FaultConfig::off() };
        let out = run_cluster_faulty(&topo, NetworkModel::instant(), cfg, |ctx| {
            ctx.set_recv_timeout(Some(Duration::from_millis(10)));
            let h = ctx.irecv(0, 4).unwrap();
            ctx.isend(0, 4, &[1.0, 2.0]).unwrap();
            let mut buf = [0.0; 2];
            let err = ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap_err();
            let stats = ctx.fault_stats();
            (err, stats, ctx.take_fault_events())
        });
        let (err, stats, events) = &out[0];
        assert!(matches!(err, NetsimError::Timeout { pending, .. } if pending == &[(0, 4)]));
        assert_eq!(stats.drops, 1);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FaultKind::Drop);
    }

    #[test]
    fn duplicated_message_arrives_twice() {
        let topo = CartTopo::new(&[1], true);
        let cfg = FaultConfig { seed: 3, dup: 1.0, ..FaultConfig::off() };
        run_cluster_faulty(&topo, NetworkModel::instant(), cfg, |ctx| {
            ctx.isend(0, 6, &[9.0; 4]).unwrap();
            let h1 = ctx.irecv(0, 6).unwrap();
            let h2 = ctx.irecv(0, 6).unwrap();
            let (mut a, mut b) = ([0.0; 4], [0.0; 4]);
            ctx.waitall_into(&[h1, h2], &mut [&mut a[..], &mut b[..]]).unwrap();
            assert_eq!(a, [9.0; 4]);
            assert_eq!(b, [9.0; 4]);
            assert_eq!(ctx.fault_stats().dups, 1);
        });
    }

    #[test]
    fn corrupted_message_flips_exactly_one_word() {
        let topo = CartTopo::new(&[1], true);
        let cfg = FaultConfig { seed: 7, corrupt: 1.0, ..FaultConfig::off() };
        run_cluster_faulty(&topo, NetworkModel::instant(), cfg, |ctx| {
            let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
            let h = ctx.irecv(0, 2).unwrap();
            ctx.isend(0, 2, &data).unwrap();
            let mut buf = [0.0; 16];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            let differing =
                data.iter().zip(buf.iter()).filter(|(a, b)| a.to_bits() != b.to_bits()).count();
            assert_eq!(differing, 1, "exactly one word must be corrupted");
        });
    }

    #[test]
    fn fault_bypass_and_drain_recover_the_channel() {
        let topo = CartTopo::new(&[1], true);
        let cfg = FaultConfig { seed: 2, drop: 1.0, ..FaultConfig::off() };
        run_cluster_faulty(&topo, NetworkModel::instant(), cfg, |ctx| {
            // Injected drop loses the message...
            ctx.isend(0, 8, &[1.0]).unwrap();
            // ...the degraded path bypasses injection and gets through.
            let was = ctx.set_fault_bypass(true);
            assert!(!was);
            ctx.isend(0, 8, &[2.0]).unwrap();
            ctx.set_fault_bypass(false);
            let h = ctx.irecv(0, 8).unwrap();
            let mut buf = [0.0; 1];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            assert_eq!(buf, [2.0]);
            assert_eq!(ctx.drain_mailbox(0, 8), 0, "nothing stale left");
        });
    }

    #[test]
    fn drain_mailbox_evicts_stale_messages() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            for _ in 0..5 {
                ctx.isend(0, 3, &[1.0; 8]).unwrap();
            }
            assert_eq!(ctx.drain_mailbox(0, 3), 5);
            assert_eq!(ctx.drain_mailbox(0, 3), 0);
            // Pooled buffers went back: next sends reuse them.
            let before = ctx.transport_allocs();
            ctx.isend(0, 3, &[1.0; 8]).unwrap();
            assert_eq!(ctx.transport_allocs(), before);
            ctx.drain_mailbox(0, 3);
        });
    }

    #[test]
    fn recv_deadline_returns_frames_and_misses() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            ctx.isend(0, 5, &[4.0, 5.0]).unwrap();
            let h = ctx.irecv(0, 5).unwrap();
            let deadline = Instant::now() + Duration::from_millis(50);
            let msg = ctx.recv_deadline(h, deadline).expect("queued message");
            assert_eq!(msg.data(), &[4.0, 5.0]);
            ctx.recycle(msg);
            let h2 = ctx.irecv(0, 5).unwrap();
            let deadline = Instant::now() + Duration::from_millis(5);
            assert!(ctx.recv_deadline(h2, deadline).is_none(), "no message queued");
            ctx.flush_epoch();
        });
    }

    #[test]
    fn profiling_timeline_agrees_with_timers() {
        let topo = CartTopo::new(&[2], true);
        let net = NetworkModel::theta_aries();
        let out = run_cluster(&topo, net, |ctx| {
            ctx.enable_profiling();
            let peer = 1 - ctx.rank();
            ctx.scoped("exchange", |ctx| {
                let h = ctx.irecv(peer, 0).unwrap();
                let data = vec![1.0; 512];
                ctx.isend(peer, 0, &data).unwrap();
                let mut buf = vec![0.0; 512];
                ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            });
            ctx.scoped("kernel", |ctx| {
                ctx.time_calc(|| std::hint::black_box((0..2000).sum::<u64>()));
            });
            (ctx.take_timeline(), ctx.timers())
        });
        for (tl, t) in &out {
            tl.validate().unwrap();
            let b = tl.phase_breakdown();
            assert!((b.wire - t.call).abs() < 1e-12);
            assert!((b.wait - t.wait).abs() < 1e-12);
            assert!((b.compute - t.calc).abs() < 1e-12);
            assert!((b.total() - t.total()).abs() < 1e-12);
            assert_eq!(tl.counters, vec![("msgs_sent", 1)]);
            // Both top-level scopes made it into the forest.
            let roots: Vec<_> =
                tl.spans.iter().filter(|s| s.depth == 0).map(|s| s.name).collect();
            assert_eq!(roots, vec!["exchange", "kernel"]);
        }
    }

    #[test]
    fn disabled_profiling_records_nothing() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster(&topo, NetworkModel::theta_aries(), |ctx| {
            ctx.scoped("exchange", |ctx| {
                ctx.isend(0, 0, &[1.0; 16]).unwrap();
                let h = ctx.irecv(0, 0).unwrap();
                let mut buf = [0.0; 16];
                ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            });
            assert!(!ctx.profiling_enabled());
            ctx.take_timeline()
        });
        assert!(out[0].spans.is_empty());
        assert!(out[0].counters.is_empty());
    }

    #[test]
    fn time_calc_with_tops_up_uninstrumented_remainder() {
        let topo = CartTopo::new(&[1], true);
        run_cluster(&topo, NetworkModel::instant(), |ctx| {
            ctx.enable_profiling();
            ctx.time_calc_with(|rec| {
                rec.open("stage");
                rec.charge(telemetry::Phase::Compute, 0.0);
                rec.close();
                std::hint::black_box((0..5000).sum::<u64>());
            });
            let t = ctx.timers();
            let tl = ctx.take_timeline();
            tl.validate().unwrap();
            let b = tl.phase_breakdown();
            assert!(t.calc > 0.0);
            assert!((b.compute - t.calc).abs() < 1e-12, "remainder top-up keeps agreement");
        });
    }

    #[test]
    fn jitter_slows_the_rank_wire_model() {
        let topo = CartTopo::new(&[2], true);
        let net = NetworkModel::theta_aries();
        let cfg = FaultConfig { seed: 21, jitter: 0.5, ..FaultConfig::off() };
        let out = run_cluster_faulty(&topo, net, cfg, |ctx| ctx.network().latency);
        for (rank, &lat) in out.iter().enumerate() {
            let expect = net.slowed(FaultPlan::new(cfg, rank).slowdown()).latency;
            assert_eq!(lat, expect);
            assert!(lat >= net.latency);
        }
    }

    /// One shifted-ring exchange; every rank returns its exact timers.
    fn ring_once(topo: &CartTopo, net: impl Into<HierarchicalNetworkModel>) -> Vec<Timers> {
        run_cluster(topo, net, |ctx| {
            let peer = (ctx.rank() + 1) % ctx.size();
            let from = (ctx.rank() + ctx.size() - 1) % ctx.size();
            let h = ctx.irecv(from, 7).unwrap();
            ctx.isend(peer, 7, &[1.0; 64]).unwrap();
            let mut buf = [0.0; 64];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            ctx.timers()
        })
    }

    #[test]
    fn flat_hierarchy_is_bit_identical_to_flat_model() {
        let topo = CartTopo::new(&[4], true);
        let net = NetworkModel::theta_aries();
        let flat = ring_once(&topo, net);
        let hier = ring_once(&topo, HierarchicalNetworkModel::flat(net));
        // Even one rank per node with distinct tiers stays on the
        // fabric for every pair — same arithmetic, same bits.
        let degenerate = ring_once(&topo, HierarchicalNetworkModel::dragonfly(1));
        for rank in 0..topo.size() {
            assert_eq!(flat[rank].call.to_bits(), hier[rank].call.to_bits());
            assert_eq!(flat[rank].wait.to_bits(), hier[rank].wait.to_bits());
            assert_eq!(flat[rank].call.to_bits(), degenerate[rank].call.to_bits());
            assert_eq!(flat[rank].wait.to_bits(), degenerate[rank].wait.to_bits());
        }
    }

    #[test]
    fn hier_charges_each_message_by_node_locality() {
        // Ring of 4, two ranks per node: nodes {0,1} and {2,3}. In the
        // shifted ring every rank sends exactly one message — rank 0
        // stays on-node (to 1), rank 1 crosses the fabric (to 2), etc.
        let topo = CartTopo::new(&[4], true);
        let h = HierarchicalNetworkModel::dragonfly(2);
        let bytes = 64 * std::mem::size_of::<f64>();
        let out = ring_once(&topo, h);
        for (rank, timers) in out.iter().enumerate() {
            let send_on = h.node.same_node(rank, (rank + 1) % 4);
            let recv_on = h.node.same_node(rank, (rank + 3) % 4);
            let send_o = if send_on { h.intra.overhead } else { h.inter.overhead };
            let recv_o = if recv_on { h.intra.overhead } else { h.inter.overhead };
            assert_eq!(timers.call, send_o + recv_o, "rank {rank} call");
            let wait = if send_on {
                h.intra.wait_time(1, bytes)
            } else {
                h.inter.wait_time(1, bytes)
            };
            assert_eq!(timers.wait, wait, "rank {rank} wait");
        }
        // On-node messages are strictly cheaper than off-node ones.
        assert!(out[0].wait < out[1].wait);
    }

    #[test]
    fn hier_loopback_is_an_on_node_transfer() {
        let topo = CartTopo::new(&[1], true);
        let h = HierarchicalNetworkModel::fat_tree(4);
        let out = run_cluster(&topo, h, |ctx| {
            let src = [3.0; 32];
            let mut dst = [0.0; 32];
            ctx.loopback_into(9, &src, &mut dst).unwrap();
            ctx.flush_epoch();
            assert_eq!(dst, src);
            ctx.timers()
        });
        let bytes = 32 * std::mem::size_of::<f64>();
        assert_eq!(out[0].call, 2.0 * h.intra.overhead);
        assert_eq!(out[0].wait, h.intra.wait_time(1, bytes));
    }
}
