//! Per-rank timing in the artifact's categories.
//!
//! The paper's artifact reports, per timestep: `calc` (stencil compute),
//! `pack` (packing/unpacking), `call` (MPI_Isend/Irecv posting) and
//! `wait` (MPI_Waitall). We keep the same taxonomy; `calc` and `pack`
//! are real measured wall time, `call` and `wait` come from the wire
//! model.

use std::time::Instant;

/// Accumulated times (seconds) and traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Timers {
    /// Stencil computation (really measured).
    pub calc: f64,
    /// Packing/unpacking (really measured).
    pub pack: f64,
    /// Message posting overhead (modeled: `o * messages`).
    pub call: f64,
    /// Completion wait (modeled LogGP term).
    pub wait: f64,
    /// Messages sent.
    pub msgs: u64,
    /// Bytes put on the wire (including any padding).
    pub wire_bytes: u64,
    /// Payload bytes (excluding padding), set by callers that know it.
    pub payload_bytes: u64,
}

impl Timers {
    /// Total communication time (`pack + call + wait`), the paper's
    /// `Comm`.
    pub fn comm(&self) -> f64 {
        self.pack + self.call + self.wait
    }

    /// Total time (`Comm + calc`).
    pub fn total(&self) -> f64 {
        self.comm() + self.calc
    }

    /// Element-wise sum.
    pub fn merge(&mut self, o: &Timers) {
        self.calc += o.calc;
        self.pack += o.pack;
        self.call += o.call;
        self.wait += o.wait;
        self.msgs += o.msgs;
        self.wire_bytes += o.wire_bytes;
        self.payload_bytes += o.payload_bytes;
    }

    /// Scale all times and counters by `1/n` (per-timestep averaging).
    pub fn per_step(&self, n: usize) -> Timers {
        let inv = 1.0 / n as f64;
        Timers {
            calc: self.calc * inv,
            pack: self.pack * inv,
            call: self.call * inv,
            wait: self.wait * inv,
            msgs: self.msgs / n as u64,
            wire_bytes: self.wire_bytes / n as u64,
            payload_bytes: self.payload_bytes / n as u64,
        }
    }

    /// Zero everything.
    pub fn reset(&mut self) {
        *self = Timers::default();
    }
}

/// Measure a closure's wall time in seconds, returning `(result, secs)`.
#[inline]
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_per_step() {
        let mut a = Timers { calc: 1.0, pack: 2.0, call: 0.5, wait: 0.5, msgs: 10, wire_bytes: 100, payload_bytes: 80 };
        let b = a;
        a.merge(&b);
        assert_eq!(a.calc, 2.0);
        assert_eq!(a.msgs, 20);
        let p = a.per_step(2);
        assert_eq!(p.calc, 1.0);
        assert_eq!(p.msgs, 10);
        assert_eq!(p.comm(), 2.0 + 0.5 + 0.5);
        assert_eq!(p.total(), 4.0);
    }

    #[test]
    fn timed_measures_something() {
        let (v, t) = timed(|| {
            let mut s = 0u64;
            for i in 0..100_000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert!(v > 0);
        assert!(t >= 0.0);
    }
}
