//! Persistent partitioned channels: `pready`-style early-bird sends.
//!
//! Models MPI-4 partitioned communication (`MPI_Psend_init` /
//! `MPI_Pready`) on top of the pooled transport, following *Persistent
//! and Partitioned MPI for Stencil Communication*: a
//! [`PartitionedSend`] is bound **once** to a `(dest, tag,
//! partition-table)` triple, compute workers mark individual partitions
//! ready as their bricks finish, and the channel ships accumulated
//! ready *prefixes* early — before the message's nominal injection
//! point at the next exchange — so the fragment's serialization drains
//! behind compute that is still being billed.
//!
//! # Wire-model accounting
//!
//! Early fragments go out via [`RankCtx::isend_deferred`]: each one is
//! charged the per-message overhead `o` (the real cost of fragmenting —
//! more fragments, more injection overhead) but stays out of the send
//! epoch; its serialization `g + B/β` is **deferred**. The channel
//! timestamps the fragment with the rank's virtual clock; at the next
//! [`PartitionedSend::flush`] it bills only the *residual*
//! `max(0, (g + B/β) − elapsed)` — whatever part of the drain the
//! intervening billed work did not cover. The remainder of the message
//! (partitions not shipped early) is posted through the ordinary epoch
//! path, which also carries the exchange's `α` latency term, so a
//! channel that never sees a `pready` degenerates to exactly the
//! phased send.
//!
//! This is the piece of the paper's win that whole-message overlap
//! (PR 5) structurally cannot reach: a whole message is injected at the
//! start of exchange *t+1* and can only hide behind window *t+1*'s
//! compute, while an early partition injected mid-window *t* also
//! drains behind the *tail* of window *t* — boundary bricks the sender
//! is still computing — absorbing per-rank jitter before the receiver
//! ever waits.
//!
//! # Receive side
//!
//! A [`PartitionedRecv`] posts **one** receive per exchange (one `o`,
//! the persistent-channel win) and scatters however many fragments
//! arrive at a running cursor into the destination range. Mailbox
//! non-overtaking order per `(source, tag)` makes the cumulative-prefix
//! protocol headerless: fragments of message *t* all precede fragments
//! of message *t+1*, and the receiver stops at exactly the bound
//! element count.

use std::ops::Range;

use crate::cluster::RankCtx;
use crate::error::NetsimError;
use crate::RecvHandle;

/// Default eager-ship threshold in bytes: a ready prefix at least this
/// large goes out immediately. Sized so the fragment's bandwidth term
/// (`B/β`) is a few multiples of the per-fragment overhead `o` on the
/// bundled fabrics — small enough to ship per-brick-cluster, large
/// enough that fragmentation overhead stays a minor tax.
pub const DEFAULT_EAGER_BYTES: usize = 8 * 1024;

/// Immutable partition layout of one message: `parts` contiguous
/// element sub-ranges covering `[0, total_elems)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionTable {
    /// Cumulative element bounds; `bounds[p]..bounds[p+1]` is partition
    /// `p`. Always starts at 0 and ends at the total element count.
    bounds: Vec<usize>,
}

impl PartitionTable {
    /// Evenly partition `total_elems` into chunks of `part_elems`
    /// (ragged last chunk). `part_elems == 0` or `>= total_elems`
    /// yields a single partition.
    pub fn even(total_elems: usize, part_elems: usize) -> PartitionTable {
        assert!(total_elems > 0, "cannot partition an empty message");
        let step = if part_elems == 0 { total_elems } else { part_elems };
        let mut bounds = Vec::with_capacity(total_elems / step + 2);
        let mut at = 0;
        while at < total_elems {
            bounds.push(at);
            at += step;
        }
        bounds.push(total_elems);
        PartitionTable { bounds }
    }

    /// Build from explicit per-partition sizes (all non-zero).
    pub fn from_sizes(sizes: &[usize]) -> PartitionTable {
        assert!(!sizes.is_empty(), "cannot partition an empty message");
        let mut bounds = Vec::with_capacity(sizes.len() + 1);
        let mut at = 0;
        bounds.push(0);
        for &s in sizes {
            assert!(s > 0, "zero-size partition");
            at += s;
            bounds.push(at);
        }
        PartitionTable { bounds }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total elements across all partitions.
    pub fn total_elems(&self) -> usize {
        // `bounds` always holds parts+1 entries (the constructor seeds
        // index 0), so `last()` cannot fail even for an empty table.
        *self.bounds.last().unwrap()
    }

    /// Element range of partition `p` within the message.
    pub fn range(&self, p: usize) -> Range<usize> {
        self.bounds[p]..self.bounds[p + 1]
    }
}

/// Byte counters for one or more partitioned channels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Payload bytes shipped early via `pready` (before the owning
    /// message's flush).
    pub early_bytes: u64,
    /// Total payload bytes flushed through partitioned channels.
    pub total_bytes: u64,
    /// Fragments put on the wire (early + flush remainders).
    pub fragments: u64,
    /// `pready` calls observed.
    pub preadys: u64,
}

impl PartitionStats {
    /// Element-wise sum.
    pub fn merge(&mut self, o: &PartitionStats) {
        self.early_bytes += o.early_bytes;
        self.total_bytes += o.total_bytes;
        self.fragments += o.fragments;
        self.preadys += o.preadys;
    }

    /// Fraction of partitioned payload that left early (0 when nothing
    /// was flushed yet).
    pub fn early_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.early_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Send half of a persistent partitioned channel.
///
/// Bound once to `(dest, tag, table)`; per exchange the owner calls
/// [`PartitionedSend::pready`] zero or more times as partitions
/// complete, then [`PartitionedSend::flush`] at the next exchange's
/// injection point to post the remainder and settle the deferred
/// bandwidth of the early fragments.
#[derive(Debug)]
pub struct PartitionedSend {
    dest: usize,
    tag: u64,
    table: PartitionTable,
    eager_bytes: usize,
    ready: Vec<bool>,
    /// First partition not yet marked ready (prefix frontier).
    frontier: usize,
    /// Elements already shipped for the in-flight message.
    shipped: usize,
    /// Of those, elements shipped via `pready` (early).
    early_elems: usize,
    /// Early fragments awaiting settlement: `(ship virtual time,
    /// drain seconds g + B/β)`.
    inflight: Vec<(f64, f64)>,
    stats: PartitionStats,
}

impl PartitionedSend {
    /// Bind a channel to `(dest, tag, table)` with the default eager
    /// threshold.
    pub fn new(dest: usize, tag: u64, table: PartitionTable) -> PartitionedSend {
        let parts = table.parts();
        PartitionedSend {
            dest,
            tag,
            table,
            eager_bytes: DEFAULT_EAGER_BYTES,
            ready: vec![false; parts],
            frontier: 0,
            shipped: 0,
            early_elems: 0,
            inflight: Vec::new(),
            stats: PartitionStats::default(),
        }
    }

    /// Override the eager-ship threshold (bytes of contiguous ready
    /// prefix that trigger an immediate fragment; 0 ships on every
    /// frontier advance).
    pub fn with_eager(mut self, bytes: usize) -> PartitionedSend {
        self.eager_bytes = bytes;
        self
    }

    /// Destination rank.
    pub fn dest(&self) -> usize {
        self.dest
    }

    /// Channel tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// The bound partition table.
    pub fn table(&self) -> &PartitionTable {
        &self.table
    }

    /// Whether partition `p` is marked ready for the in-flight message.
    pub fn is_ready(&self, p: usize) -> bool {
        self.ready[p]
    }

    /// Mark partition `p` of the upcoming message ready and ship the
    /// accumulated ready prefix if it crossed the eager threshold.
    /// `data` is the full message payload (the buffer the next
    /// [`PartitionedSend::flush`] will send); only the newly shippable
    /// prefix is read. Idempotent per partition per message.
    pub fn pready(
        &mut self,
        ctx: &mut RankCtx<'_>,
        p: usize,
        data: &[f64],
    ) -> Result<(), NetsimError> {
        debug_assert_eq!(data.len(), self.table.total_elems());
        self.stats.preadys += 1;
        if self.ready[p] {
            return Ok(());
        }
        self.ready[p] = true;
        while self.frontier < self.table.parts() && self.ready[self.frontier] {
            self.frontier += 1;
        }
        let prefix = self.table.bounds[self.frontier];
        if (prefix - self.shipped) * std::mem::size_of::<f64>() >= self.eager_bytes.max(1) {
            self.ship(ctx, data, prefix, true)?;
        }
        Ok(())
    }

    /// Put `data[shipped..upto]` on the wire as one fragment.
    fn ship(
        &mut self,
        ctx: &mut RankCtx<'_>,
        data: &[f64],
        upto: usize,
        early: bool,
    ) -> Result<(), NetsimError> {
        let frag = &data[self.shipped..upto];
        if early {
            ctx.isend_deferred(self.dest, self.tag, frag)?;
            // Timestamp *after* the post: drain starts once injected,
            // so the fragment's own `o` does not count as drain. The
            // drain rate is the tier this destination is reached over
            // (shared memory for an on-node peer in a hierarchical run).
            let net = ctx.network_to(self.dest);
            let cost = net.gap + std::mem::size_of_val(frag) as f64 / net.bandwidth;
            self.inflight.push((ctx.virtual_time(), cost));
            self.early_elems += frag.len();
        } else {
            ctx.isend(self.dest, self.tag, frag)?;
        }
        self.stats.fragments += 1;
        self.shipped = upto;
        Ok(())
    }

    /// Post the message remainder through the ordinary epoch path,
    /// settle the deferred bandwidth of this message's early fragments
    /// (billing only the drain residual not covered by intervening
    /// billed work), and re-arm the channel for the next message.
    /// `data` must be the same logical payload earlier `pready` calls
    /// sliced.
    pub fn flush(&mut self, ctx: &mut RankCtx<'_>, data: &[f64]) -> Result<(), NetsimError> {
        debug_assert_eq!(data.len(), self.table.total_elems());
        let total = self.table.total_elems();
        // Settle first: the drain window closes at the next message's
        // injection point, before the remainder's own posting cost.
        let now = ctx.virtual_time();
        let mut residual = 0.0;
        for &(at, cost) in &self.inflight {
            residual += (cost - (now - at).max(0.0)).max(0.0);
        }
        if residual > 0.0 {
            ctx.charge_wait(residual);
        }
        self.inflight.clear();
        if self.shipped < total {
            self.ship(ctx, data, total, false)?;
        }
        self.stats.early_bytes += (self.early_elems * std::mem::size_of::<f64>()) as u64;
        self.stats.total_bytes += (total * std::mem::size_of::<f64>()) as u64;
        self.ready.fill(false);
        self.frontier = 0;
        self.shipped = 0;
        self.early_elems = 0;
        Ok(())
    }

    /// Accumulated channel statistics.
    pub fn stats(&self) -> PartitionStats {
        self.stats
    }

    /// Zero the statistics (e.g. after warmup steps).
    pub fn reset_stats(&mut self) {
        self.stats = PartitionStats::default();
    }
}

/// Receive half of a persistent partitioned channel: one posted
/// receive per exchange, fragments scattered at a running cursor.
#[derive(Debug)]
pub struct PartitionedRecv {
    src: usize,
    tag: u64,
    total_elems: usize,
    handle: Option<RecvHandle>,
    filled: usize,
}

impl PartitionedRecv {
    /// Bind a receive channel to `(src, tag)` expecting `total_elems`
    /// elements per message.
    pub fn new(src: usize, tag: u64, total_elems: usize) -> PartitionedRecv {
        assert!(total_elems > 0, "cannot bind an empty receive channel");
        PartitionedRecv { src, tag, total_elems, handle: None, filled: 0 }
    }

    /// Source rank.
    pub fn src(&self) -> usize {
        self.src
    }

    /// Channel tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Elements expected per message.
    pub fn total_elems(&self) -> usize {
        self.total_elems
    }

    /// Arm the channel for one message: posts the single persistent
    /// receive (one `o`) and rewinds the fragment cursor.
    pub fn begin(&mut self, ctx: &mut RankCtx<'_>) -> Result<(), NetsimError> {
        debug_assert!(self.handle.is_none(), "begin without finishing previous message");
        self.handle = Some(ctx.irecv(self.src, self.tag)?);
        self.filled = 0;
        Ok(())
    }

    /// Drain any fragments that already arrived into `dst` (the bound
    /// destination range, `total_elems` long) without blocking.
    /// Returns whether the message is complete.
    pub fn poll(&mut self, ctx: &mut RankCtx<'_>, dst: &mut [f64]) -> Result<bool, NetsimError> {
        debug_assert_eq!(dst.len(), self.total_elems);
        let Some(h) = self.handle else { return Ok(true) };
        while self.filled < self.total_elems {
            let Some(msg) = ctx.try_wait(h) else { break };
            self.scatter(ctx, msg, dst)?;
        }
        if self.filled == self.total_elems {
            self.handle = None;
        }
        Ok(self.handle.is_none())
    }

    /// Block until the message completes, scattering the remaining
    /// fragments into `dst`. Honors the rank's armed receive deadline.
    pub fn finish(&mut self, ctx: &mut RankCtx<'_>, dst: &mut [f64]) -> Result<(), NetsimError> {
        debug_assert_eq!(dst.len(), self.total_elems);
        let Some(h) = self.handle else { return Ok(()) };
        while self.filled < self.total_elems {
            let msg = ctx.recv_blocking(h)?;
            self.scatter(ctx, msg, dst)?;
        }
        self.handle = None;
        Ok(())
    }

    fn scatter(
        &mut self,
        ctx: &mut RankCtx<'_>,
        msg: crate::RecvdMsg,
        dst: &mut [f64],
    ) -> Result<(), NetsimError> {
        let got = msg.data().len();
        if self.filled + got > self.total_elems {
            let err = NetsimError::SizeMismatch {
                rank: ctx.rank(),
                source: self.src,
                tag: self.tag,
                expected: self.total_elems - self.filled,
                got,
            };
            ctx.recycle(msg);
            return Err(err);
        }
        dst[self.filled..self.filled + got].copy_from_slice(msg.data());
        self.filled += got;
        ctx.recycle(msg);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster, run_cluster_on, Backend};
    use crate::model::NetworkModel;
    use crate::topo::CartTopo;
    use crate::FaultConfig;

    const TAG: u64 = 0x77;

    fn payload(rank: usize, n: usize) -> Vec<f64> {
        (0..n).map(|i| (rank * 1000 + i) as f64).collect()
    }

    /// One exchange over a bound channel pair: rank 0 -> rank 1, with
    /// the given pready order before the flush.
    fn ring_exchange(
        net: NetworkModel,
        eager: usize,
        pready_order: &[usize],
    ) -> Vec<(Vec<f64>, PartitionStats, f64)> {
        let order = pready_order.to_vec();
        let topo = CartTopo::new(&[2], false);
        run_cluster(&topo, net, move |ctx| {
            let n = 16;
            if ctx.rank() == 0 {
                let table = PartitionTable::even(n, 4);
                let mut tx = PartitionedSend::new(1, TAG, table).with_eager(eager);
                let data = payload(0, n);
                for &p in &order {
                    tx.pready(ctx, p, &data).unwrap();
                }
                tx.flush(ctx, &data).unwrap();
                ctx.flush_epoch();
                (Vec::new(), tx.stats(), ctx.timers().wait)
            } else {
                let mut rx = PartitionedRecv::new(0, TAG, n);
                let mut dst = vec![0.0; n];
                rx.begin(ctx).unwrap();
                rx.finish(ctx, &mut dst).unwrap();
                (dst, PartitionStats::default(), 0.0)
            }
        })
    }

    #[test]
    fn table_even_is_ragged_and_covering() {
        let t = PartitionTable::even(10, 4);
        assert_eq!(t.parts(), 3);
        assert_eq!(t.range(0), 0..4);
        assert_eq!(t.range(2), 8..10);
        assert_eq!(t.total_elems(), 10);
        let s = PartitionTable::from_sizes(&[2, 5, 3]);
        assert_eq!(s.parts(), 3);
        assert_eq!(s.range(1), 2..7);
        assert_eq!(s.total_elems(), 10);
    }

    #[test]
    fn prefix_ships_only_when_contiguous() {
        // pready order 1, 0, 3: partition 1 alone is not a prefix; 0
        // completes the [0,1] prefix (8 elems = 64 B >= eager 1); 3 is
        // blocked behind 2, which never readies early.
        let out = ring_exchange(NetworkModel::instant(), 1, &[1, 0, 3]);
        let (dst, _, _) = &out[1];
        assert_eq!(dst, &payload(0, 16));
        let (_, stats, _) = &out[0];
        assert_eq!(stats.early_bytes, 8 * 8);
        assert_eq!(stats.total_bytes, 16 * 8);
        assert_eq!(stats.fragments, 2); // early [0..8), flush [8..16)
        assert_eq!(stats.preadys, 3);
    }

    #[test]
    fn eager_threshold_holds_small_prefixes_back() {
        // Threshold above the whole message: nothing ships early, the
        // flush sends one whole-message fragment — the phased shape.
        let out = ring_exchange(NetworkModel::instant(), 1 << 20, &[0, 1, 2, 3]);
        let (dst, _, _) = &out[1];
        assert_eq!(dst, &payload(0, 16));
        let (_, stats, _) = &out[0];
        assert_eq!(stats.early_bytes, 0);
        assert_eq!(stats.fragments, 1);
        assert!((stats.early_fraction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_pready_is_idempotent_and_completes() {
        let out = ring_exchange(NetworkModel::instant(), 1, &[3, 3, 2, 1, 0, 0]);
        let (dst, _, _) = &out[1];
        assert_eq!(dst, &payload(0, 16));
        let (_, stats, _) = &out[0];
        // Frontier jumps 0 -> 4 on the last effective pready: one
        // early fragment of the whole message, nothing at flush.
        assert_eq!(stats.early_bytes, 16 * 8);
        assert_eq!(stats.fragments, 1);
        assert!((stats.early_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deferred_bandwidth_bills_only_the_residual() {
        // Early fragment cost = g + B/beta. With enough compute billed
        // between pready and flush the residual is zero; with none it
        // is the full drain cost. Latency terms flow through the epoch
        // either way.
        let net = NetworkModel::theta_aries();
        let drain = |calc_secs: f64| -> f64 {
            let topo = CartTopo::new(&[2], false);
            let out = run_cluster(&topo, net, move |ctx| {
                let n = 1024;
                if ctx.rank() == 0 {
                    let table = PartitionTable::even(n, n / 2);
                    let mut tx = PartitionedSend::new(1, TAG, table).with_eager(1);
                    let data = payload(0, n);
                    tx.pready(ctx, 0, &data).unwrap();
                    ctx.charge_calc(calc_secs);
                    tx.flush(ctx, &data).unwrap();
                    ctx.flush_epoch();
                    ctx.timers().wait
                } else {
                    let mut rx = PartitionedRecv::new(0, TAG, n);
                    let mut dst = vec![0.0; n];
                    rx.begin(ctx).unwrap();
                    rx.finish(ctx, &mut dst).unwrap();
                    0.0
                }
            });
            out[0]
        };
        let frag_cost = net.gap + (512.0 * 8.0) / net.bandwidth;
        // The epoch sees only the flush remainder (one message, 512
        // elems): alpha + remainder_bytes/beta. The deferred fragment
        // contributes nothing to it.
        let epoch_wait = net.latency + (512.0 * 8.0) / net.bandwidth;
        let hidden = drain(1.0);
        let exposed = drain(0.0);
        assert!(
            (hidden - epoch_wait).abs() < 1e-12,
            "drained fragment should cost no wait: {hidden} vs {epoch_wait}"
        );
        assert!(
            (exposed - (epoch_wait + frag_cost)).abs() < 1e-12,
            "undrained fragment should bill its full cost: {exposed} vs {}",
            epoch_wait + frag_cost
        );
    }

    #[test]
    fn oversize_fragment_reports_size_mismatch() {
        let topo = CartTopo::new(&[2], false);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(1, TAG, &payload(0, 10)).unwrap();
                ctx.flush_epoch();
                true
            } else {
                let mut rx = PartitionedRecv::new(0, TAG, 8);
                let mut dst = vec![0.0; 8];
                rx.begin(ctx).unwrap();
                matches!(
                    rx.finish(ctx, &mut dst),
                    Err(NetsimError::SizeMismatch { expected: 8, got: 10, .. })
                )
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn channel_reuse_across_messages_with_poll() {
        // Two back-to-back messages on one bound channel pair, with the
        // second message's early fragments posted before the receiver
        // finishes... the mailbox's non-overtaking order keeps the
        // cursor protocol headerless.
        let topo = CartTopo::new(&[2], false);
        let out = run_cluster(&topo, NetworkModel::instant(), |ctx| {
            let n = 12;
            if ctx.rank() == 0 {
                let table = PartitionTable::even(n, 3);
                let mut tx = PartitionedSend::new(1, TAG, table).with_eager(1);
                let a = payload(7, n);
                let b = payload(9, n);
                tx.flush(ctx, &a).unwrap(); // message 1: no preadys
                tx.pready(ctx, 0, &b).unwrap(); // early for message 2
                tx.pready(ctx, 1, &b).unwrap();
                tx.flush(ctx, &b).unwrap(); // message 2 remainder
                ctx.flush_epoch();
                (Vec::new(), Vec::new())
            } else {
                let mut rx = PartitionedRecv::new(0, TAG, n);
                let mut a = vec![0.0; n];
                let mut b = vec![0.0; n];
                rx.begin(ctx).unwrap();
                rx.finish(ctx, &mut a).unwrap();
                rx.begin(ctx).unwrap();
                while !rx.poll(ctx, &mut b).unwrap() {}
                (a, b)
            }
        });
        let (a, b) = &out[1];
        assert_eq!(a, &payload(7, 12));
        assert_eq!(b, &payload(9, 12));
    }

    #[test]
    fn event_backend_matches_thread_backend() {
        if !Backend::event_supported() {
            return;
        }
        let run = |backend: Backend| {
            let topo = CartTopo::new(&[2], false);
            run_cluster_on(backend, &topo, NetworkModel::theta_aries(), FaultConfig::off(), |ctx| {
                let n = 64;
                if ctx.rank() == 0 {
                    let table = PartitionTable::even(n, 8);
                    let mut tx = PartitionedSend::new(1, TAG, table).with_eager(1);
                    let data = payload(3, n);
                    for p in [2, 0, 1, 7, 3] {
                        tx.pready(ctx, p, &data).unwrap();
                    }
                    tx.flush(ctx, &data).unwrap();
                    ctx.flush_epoch();
                    (Vec::new(), ctx.timers().wait.to_bits())
                } else {
                    let mut rx = PartitionedRecv::new(0, TAG, n);
                    let mut dst = vec![0.0; n];
                    rx.begin(ctx).unwrap();
                    rx.finish(ctx, &mut dst).unwrap();
                    (dst, 0)
                }
            })
        };
        let t = run(Backend::Thread);
        let e = run(Backend::Event);
        assert_eq!(t[1].0, e[1].0);
        assert_eq!(t[0].1, e[0].1);
    }
}
