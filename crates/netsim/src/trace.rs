//! Message tracing: record every posted message for schedule
//! inspection — the tool behind `ext_message_trace`, which verifies the
//! 42-message structure of the Layout exchange at the wire level.
//!
//! The trace also carries the **fault log**: every fault injected by a
//! [`crate::fault::FaultPlan`] is appended as a [`FaultEvent`],
//! unconditionally (message events stay opt-in and zero-cost when
//! disabled, but a chaos run must never lose its injection record —
//! determinism tests and the CI artifact both replay it).

use crate::fault::FaultEvent;

/// One traced message event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsgEvent {
    /// `true` for a send, `false` for a completed receive.
    pub send: bool,
    /// Peer rank.
    pub peer: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload bytes.
    pub bytes: usize,
}

/// A per-rank event log (enabled explicitly; zero cost otherwise).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<MsgEvent>,
    faults: Vec<FaultEvent>,
}

impl Trace {
    /// Start recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Record an event if recording.
    pub fn record(&mut self, e: MsgEvent) {
        if self.enabled {
            self.events.push(e);
        }
    }

    /// Drain the recorded events.
    pub fn take(&mut self) -> Vec<MsgEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[MsgEvent] {
        &self.events
    }

    /// Record an injected fault (always kept, independent of
    /// [`Trace::enable`]: the fault log is the chaos run's artifact).
    pub fn record_fault(&mut self, e: FaultEvent) {
        self.faults.push(e);
    }

    /// Injected faults recorded so far.
    pub fn faults(&self) -> &[FaultEvent] {
        &self.faults
    }

    /// Drain the recorded fault events.
    pub fn take_faults(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.faults)
    }

    /// Render a fault log as a JSON array (the CI chaos artifact).
    pub fn faults_json(rank: usize, faults: &[FaultEvent]) -> String {
        let mut out = String::from("[");
        for (i, f) in faults.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"rank\": {rank}, \"kind\": \"{}\", \"src\": {}, \"dest\": {}, \
                 \"tag\": {}, \"attempt\": {}, \"bytes\": {}}}",
                f.kind.name(),
                f.src,
                f.dest,
                f.tag,
                f.attempt,
                f.bytes
            ));
        }
        out.push(']');
        out
    }

    /// Summaries: `(sends, recvs, send_bytes)`.
    pub fn totals(&self) -> (usize, usize, usize) {
        let sends = self.events.iter().filter(|e| e.send).count();
        let recvs = self.events.len() - sends;
        let bytes = self.events.iter().filter(|e| e.send).map(|e| e.bytes).sum();
        (sends, recvs, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(MsgEvent { send: true, peer: 0, tag: 1, bytes: 8 });
        assert!(t.events().is_empty());
    }

    #[test]
    fn faults_recorded_even_when_disabled() {
        use crate::fault::FaultKind;
        let mut t = Trace::default();
        let e = FaultEvent { kind: FaultKind::Drop, src: 0, dest: 1, tag: 7, attempt: 3, bytes: 64 };
        t.record_fault(e);
        assert_eq!(t.faults(), &[e]);
        let json = Trace::faults_json(2, t.faults());
        assert!(json.starts_with('['));
        assert!(json.contains("\"kind\": \"drop\""));
        assert!(json.contains("\"rank\": 2"));
        assert_eq!(t.take_faults().len(), 1);
        assert!(t.faults().is_empty());
    }

    #[test]
    fn totals() {
        let mut t = Trace::default();
        t.enable();
        t.record(MsgEvent { send: true, peer: 1, tag: 0, bytes: 100 });
        t.record(MsgEvent { send: true, peer: 2, tag: 0, bytes: 50 });
        t.record(MsgEvent { send: false, peer: 1, tag: 0, bytes: 100 });
        assert_eq!(t.totals(), (2, 1, 150));
        assert_eq!(t.take().len(), 3);
        assert!(t.events().is_empty());
    }
}
