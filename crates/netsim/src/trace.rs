//! Message tracing: record every posted message for schedule
//! inspection — the tool behind `ext_message_trace`, which verifies the
//! 42-message structure of the Layout exchange at the wire level.

/// One traced message event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsgEvent {
    /// `true` for a send, `false` for a completed receive.
    pub send: bool,
    /// Peer rank.
    pub peer: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload bytes.
    pub bytes: usize,
}

/// A per-rank event log (enabled explicitly; zero cost otherwise).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<MsgEvent>,
}

impl Trace {
    /// Start recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Record an event if recording.
    pub fn record(&mut self, e: MsgEvent) {
        if self.enabled {
            self.events.push(e);
        }
    }

    /// Drain the recorded events.
    pub fn take(&mut self) -> Vec<MsgEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[MsgEvent] {
        &self.events
    }

    /// Summaries: `(sends, recvs, send_bytes)`.
    pub fn totals(&self) -> (usize, usize, usize) {
        let sends = self.events.iter().filter(|e| e.send).count();
        let recvs = self.events.len() - sends;
        let bytes = self.events.iter().filter(|e| e.send).map(|e| e.bytes).sum();
        (sends, recvs, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(MsgEvent { send: true, peer: 0, tag: 1, bytes: 8 });
        assert!(t.events().is_empty());
    }

    #[test]
    fn totals() {
        let mut t = Trace::default();
        t.enable();
        t.record(MsgEvent { send: true, peer: 1, tag: 0, bytes: 100 });
        t.record(MsgEvent { send: true, peer: 2, tag: 0, bytes: 50 });
        t.record(MsgEvent { send: false, peer: 1, tag: 0, bytes: 100 });
        assert_eq!(t.totals(), (2, 1, 150));
        assert_eq!(t.take().len(), 3);
        assert!(t.events().is_empty());
    }
}
