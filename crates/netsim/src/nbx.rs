//! Nonblocking-barrier consensus (`ibarrier`) and the NBX sparse
//! dynamic data exchange built on it.
//!
//! The problem: after a migration epoch, every rank knows who it must
//! *send* to (its new ghost suppliers are derivable locally) but not who
//! will send to *it* — the classic unknown-partner situation that naive
//! codes solve with an `MPI_Alltoall` on message counts, an O(ranks²)
//! hammer. NBX (Hoefler et al., and the scalable variant in arXiv
//! 2308.13869) replaces it with consensus: post all sends, then enter a
//! *nonblocking* barrier; keep serving incoming messages while the
//! barrier is incomplete. Because every rank enters the barrier only
//! after its own sends are posted (and, for request/reply protocols,
//! after all its expected replies arrived), barrier completion proves
//! global quiescence: no message can still be in flight, so draining
//! the mailbox one last time is exhaustive.
//!
//! [`Ibarrier`] is the consensus primitive — a dissemination barrier
//! (`ceil(log2 n)` rounds) whose progress is polled, never blocked on —
//! and [`RankCtx::nbx_exchange`] is the complete exchange for the
//! "sends known, receives unknown" case. Protocols that must delay
//! barrier entry on a *counted-replies* condition (the rebalance
//! subsystem's forwarded ownership discovery) drive [`Ibarrier`]
//! directly.
//!
//! All traffic here is control-plane ([`CTRL_TAG_BIT`]): partner
//! discovery must survive chaos configurations that drop or corrupt
//! data frames, exactly like the recovery fences it cooperates with.

use crate::cluster::{RankCtx, RecvHandle};
use crate::error::NetsimError;
use crate::fault::CTRL_TAG_BIT;

/// Reserved tag namespace for barrier tokens; the dissemination round
/// index lands in the low bits.
const NBX_BARRIER_NS: u64 = CTRL_TAG_BIT | 0x9BA0_0000;

/// A batch of NBX frames, each tagged with the peer rank it came from
/// (or goes to).
pub type NbxFrames = Vec<(usize, Vec<f64>)>;

/// Message counters for one NBX exchange — the no-alltoall witness.
/// Summed across ranks, `data_msgs` stays proportional to the real
/// partner degree while an alltoall would cost `ranks × (ranks - 1)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NbxStats {
    /// Point-to-point payload messages this rank sent.
    pub data_msgs: u64,
    /// Dissemination-barrier tokens this rank sent
    /// (`ceil(log2 ranks)`).
    pub barrier_msgs: u64,
}

/// A nonblocking dissemination barrier: `start` enters it, repeated
/// [`Ibarrier::advance`] calls poll it forward, and completion proves
/// every rank has entered. Between polls the caller keeps serving its
/// protocol — that interleaving is the entire point.
///
/// Round `k` of `ceil(log2 n)` sends a token to `(me + 2^k) mod n` and
/// waits for the token from `(me + n - 2^k mod n) mod n`; completion at
/// any rank transitively depends on every rank's entry, which is the
/// consensus property NBX needs. Tokens are control-plane traffic:
/// fault plans never touch them.
#[derive(Debug)]
pub struct Ibarrier {
    round: u32,
    rounds: u32,
    pending: Option<RecvHandle>,
    sent: u64,
}

impl Ibarrier {
    /// Enter the barrier: post round 0's token and receive. On a
    /// single-rank cluster the barrier is born complete.
    pub fn start(ctx: &mut RankCtx<'_>) -> Result<Ibarrier, NetsimError> {
        let n = ctx.size();
        let rounds = usize::BITS - (n - 1).leading_zeros();
        let mut bar = Ibarrier { round: 0, rounds, pending: None, sent: 0 };
        bar.post_round(ctx)?;
        Ok(bar)
    }

    /// Whether the barrier has completed (all ranks provably entered).
    pub fn done(&self) -> bool {
        self.round >= self.rounds
    }

    /// Barrier tokens this rank has sent so far.
    pub fn msgs(&self) -> u64 {
        self.sent
    }

    fn post_round(&mut self, ctx: &mut RankCtx<'_>) -> Result<(), NetsimError> {
        if self.done() {
            return Ok(());
        }
        let n = ctx.size();
        let me = ctx.rank();
        let hop = 1usize << self.round;
        let to = (me + hop) % n;
        let from = (me + n - hop % n) % n;
        let tag = NBX_BARRIER_NS | u64::from(self.round);
        ctx.isend(to, tag, &[f64::from_bits(u64::from(self.round))])?;
        self.sent += 1;
        self.pending = Some(ctx.irecv(from, tag)?);
        Ok(())
    }

    /// Poll the barrier one step forward without blocking. Returns
    /// `true` once complete. A `false` return means some rank has not
    /// yet entered (or its token is still in flight) — go serve the
    /// protocol and poll again.
    pub fn advance(&mut self, ctx: &mut RankCtx<'_>) -> Result<bool, NetsimError> {
        while !self.done() {
            let Some(h) = self.pending else {
                unreachable!("incomplete ibarrier with no posted receive");
            };
            let Some(msg) = ctx.try_wait(h) else {
                return Ok(false);
            };
            ctx.recycle(msg);
            self.round += 1;
            self.pending = None;
            self.post_round(ctx)?;
        }
        Ok(true)
    }
}

impl<'a> RankCtx<'a> {
    /// NBX sparse dynamic data exchange: deliver `sends` (this rank's
    /// locally-known destinations) and return every message addressed
    /// to this rank under `tag`, *without any rank ever learning the
    /// global communication matrix*. Returns the received frames sorted
    /// by source rank, plus the message counters.
    ///
    /// `tag` must carry [`CTRL_TAG_BIT`] — discovery is control-plane
    /// traffic and must be exempt from fault injection, or a dropped
    /// request would stall the consensus forever. Must be called by all
    /// ranks (it embeds a barrier); closes the current send epoch. If a
    /// peer dies mid-exchange (outside recovery mode) the stall is
    /// surfaced as [`NetsimError::RankFailed`] so a resilient driver
    /// can run its recovery epoch instead of spinning.
    pub fn nbx_exchange(
        &mut self,
        tag: u64,
        sends: &[(usize, Vec<f64>)],
    ) -> Result<(NbxFrames, NbxStats), NetsimError> {
        assert!(
            tag & CTRL_TAG_BIT != 0,
            "nbx_exchange requires a control-plane tag (CTRL_TAG_BIT)"
        );
        let mut stats = NbxStats::default();
        for (dest, frame) in sends {
            self.isend(*dest, tag, frame)?;
            stats.data_msgs += 1;
        }
        let mut got: NbxFrames = Vec::new();
        let mut bar = Ibarrier::start(self)?;
        loop {
            self.serve_tag(tag, &mut got);
            if bar.advance(self)? {
                break;
            }
            if !self.recovering() {
                if let Some(e) = self.rank_failure() {
                    return Err(e);
                }
            }
        }
        // Barrier completion proves every rank posted its sends before
        // entering, and eager delivery means posted ⇒ deposited: this
        // final sweep is exhaustive.
        self.serve_tag(tag, &mut got);
        self.flush_epoch();
        stats.barrier_msgs = bar.msgs();
        got.sort_by_key(|(src, _)| *src);
        Ok((got, stats))
    }

    /// Pop every already-deposited message matching `tag` into `out`.
    fn serve_tag(&mut self, tag: u64, out: &mut NbxFrames) {
        loop {
            let pending: Vec<usize> = self
                .mailbox_keys()
                .into_iter()
                .filter(|&(_, t, count)| t == tag && count > 0)
                .map(|(src, _, _)| src)
                .collect();
            if pending.is_empty() {
                return;
            }
            for src in pending {
                // The mailbox just showed a deposited message and only
                // this rank pops its own mailbox, so this cannot block.
                let Ok(h) = self.irecv(src, tag) else { continue };
                if let Some(msg) = self.try_wait(h) {
                    out.push((src, msg.data().to_vec()));
                    self.recycle(msg);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_cluster_on, Backend};
    use crate::fault::FaultConfig;
    use crate::model::NetworkModel;
    use crate::topo::CartTopo;

    const TAG: u64 = CTRL_TAG_BIT | 0x7E57_0000;

    fn on_both_backends(f: impl Fn(Backend)) {
        f(Backend::Thread);
        f(Backend::Event);
    }

    #[test]
    fn ibarrier_completes_with_staggered_entry() {
        on_both_backends(|backend| {
            let topo = CartTopo::new(&[5], true);
            let out = run_cluster_on(
                backend,
                &topo,
                NetworkModel::instant(),
                FaultConfig::off(),
                |ctx| {
                    // Later ranks dawdle before entering; early ranks
                    // must poll without deadlocking.
                    for _ in 0..ctx.rank() * 50 {
                        std::hint::spin_loop();
                    }
                    let mut bar = Ibarrier::start(ctx).unwrap();
                    let mut polls = 0u64;
                    while !bar.advance(ctx).unwrap() {
                        polls += 1;
                        assert!(polls < 50_000_000, "ibarrier failed to converge");
                    }
                    bar.msgs()
                },
            );
            // ceil(log2 5) = 3 tokens per rank, every rank completed.
            assert_eq!(out, vec![3, 3, 3, 3, 3], "backend {backend:?}");
        });
    }

    #[test]
    fn ibarrier_is_instant_on_one_rank() {
        let topo = CartTopo::new(&[1], true);
        let out = run_cluster_on(
            Backend::Thread,
            &topo,
            NetworkModel::instant(),
            FaultConfig::off(),
            |ctx| {
                let mut bar = Ibarrier::start(ctx).unwrap();
                assert!(bar.done());
                bar.advance(ctx).unwrap()
            },
        );
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn nbx_delivers_sparse_sends_on_both_backends() {
        on_both_backends(|backend| {
            let n = 8;
            let topo = CartTopo::new(&[n], true);
            let out = run_cluster_on(
                backend,
                &topo,
                NetworkModel::instant(),
                FaultConfig::off(),
                |ctx| {
                    let me = ctx.rank();
                    // Sparse pattern: each rank sends to +1 and +3.
                    let sends = vec![
                        ((me + 1) % n, vec![me as f64, 1.0]),
                        ((me + 3) % n, vec![me as f64, 3.0]),
                    ];
                    ctx.nbx_exchange(TAG, &sends).unwrap()
                },
            );
            for (me, (got, stats)) in out.iter().enumerate() {
                let from1 = (me + n - 1) % n;
                let from3 = (me + n - 3) % n;
                let mut want = vec![
                    (from1, vec![from1 as f64, 1.0]),
                    (from3, vec![from3 as f64, 3.0]),
                ];
                want.sort_by_key(|(s, _)| *s);
                assert_eq!(got, &want, "rank {me} backend {backend:?}");
                assert_eq!(stats.data_msgs, 2);
                assert_eq!(stats.barrier_msgs, 3, "ceil(log2 8) rounds");
            }
        });
    }

    #[test]
    fn nbx_sends_no_alltoall() {
        // The acceptance witness: total discovery traffic for a sparse
        // pattern stays far below the ranks×(ranks-1) an alltoall
        // would post.
        let n = 8;
        let topo = CartTopo::new(&[n], true);
        let out = run_cluster_on(
            Backend::Thread,
            &topo,
            NetworkModel::instant(),
            FaultConfig::off(),
            |ctx| {
                let me = ctx.rank();
                let sends = vec![((me + 1) % n, vec![42.0])];
                let (_, stats) = ctx.nbx_exchange(TAG, &sends).unwrap();
                stats
            },
        );
        let data: u64 = out.iter().map(|s| s.data_msgs).sum();
        assert!(data > 0);
        assert!(
            data < (n * (n - 1)) as u64,
            "NBX posted {data} data messages — alltoall territory"
        );
    }

    #[test]
    fn nbx_handles_idle_ranks_and_multi_messages() {
        // Rank 0 sends nothing; rank 1 sends two frames to rank 0 on
        // the same tag (non-overtaking order must hold); others idle.
        let topo = CartTopo::new(&[4], true);
        let out = run_cluster_on(
            Backend::Thread,
            &topo,
            NetworkModel::instant(),
            FaultConfig::off(),
            |ctx| {
                let sends = if ctx.rank() == 1 {
                    vec![(0usize, vec![10.0]), (0usize, vec![20.0])]
                } else {
                    vec![]
                };
                ctx.nbx_exchange(TAG, &sends).unwrap().0
            },
        );
        assert_eq!(out[0], vec![(1, vec![10.0]), (1, vec![20.0])]);
        assert!(out[1].is_empty() && out[2].is_empty() && out[3].is_empty());
    }

    #[test]
    fn nbx_survives_full_data_plane_loss() {
        // Discovery is control-plane: even drop=1.0 chaos cannot touch
        // it — a migration epoch must be able to rewire the exchange
        // under the same fault plan that is mauling the halos.
        let topo = CartTopo::new(&[4], true);
        let cfg = FaultConfig { seed: 5, drop: 1.0, ..FaultConfig::off() };
        let out = run_cluster_on(
            Backend::Thread,
            &topo,
            NetworkModel::instant(),
            cfg,
            |ctx| {
                let me = ctx.rank();
                let sends = vec![((me + 1) % 4, vec![me as f64])];
                ctx.nbx_exchange(TAG, &sends).unwrap().0
            },
        );
        for (me, got) in out.iter().enumerate() {
            assert_eq!(got, &vec![((me + 3) % 4, vec![((me + 3) % 4) as f64])]);
        }
    }

    #[test]
    #[should_panic(expected = "control-plane tag")]
    fn nbx_rejects_data_plane_tags() {
        let topo = CartTopo::new(&[2], true);
        run_cluster_on(
            Backend::Thread,
            &topo,
            NetworkModel::instant(),
            FaultConfig::off(),
            |ctx| {
                let _ = ctx.nbx_exchange(7, &[]);
            },
        );
    }
}
