//! Thread-vs-event backend contract tests: the two substrates must be
//! observationally identical (results AND modeled timers, to the bit),
//! and the event backend must deliver its scaling/robustness upgrades
//! (thousands of ranks, virtual timeouts, deadlock recovery, structured
//! panic reporting).

use std::time::{Duration, Instant};

use netsim::{
    run_cluster_on, try_run_cluster_on, Backend, FaultConfig, NetsimError, NetworkModel, Timers,
};
use netsim::CartTopo;

/// Bit-exact fingerprint of a rank's outcome: payload bits + the
/// modeled timer fields (the really-measured `calc`/`pack` fields are
/// wall-clock and excluded by design).
fn fingerprint(value: &[f64], t: Timers) -> (Vec<u64>, u64, u64, u64, u64) {
    (
        value.iter().map(|v| v.to_bits()).collect(),
        t.call.to_bits(),
        t.wait.to_bits(),
        t.msgs,
        t.wire_bytes,
    )
}

/// A 3-phase halo-style exchange with self-sends, tags, and an epoch
/// close per phase — enough structure to catch ordering bugs.
fn exchange_body(ctx: &mut netsim::RankCtx<'_>) -> (Vec<f64>, Timers) {
    let size = ctx.size();
    let rank = ctx.rank();
    let mut acc = vec![0.0f64; 4];
    for step in 0..3u64 {
        let left = (rank + size - 1) % size;
        let right = (rank + 1) % size;
        let h1 = ctx.irecv(left, step).unwrap();
        let h2 = ctx.irecv(right, 100 + step).unwrap();
        let payload: Vec<f64> = (0..4).map(|i| (rank * 10 + i) as f64 + step as f64).collect();
        ctx.isend(right, step, &payload).unwrap();
        ctx.isend(left, 100 + step, &payload).unwrap();
        let mut b1 = [0.0; 4];
        let mut b2 = [0.0; 4];
        ctx.waitall_into(&[h1, h2], &mut [&mut b1[..], &mut b2[..]]).unwrap();
        for i in 0..4 {
            acc[i] += b1[i] * 0.5 + b2[i] * 0.25;
        }
        ctx.barrier();
    }
    (acc, ctx.timers())
}

#[test]
fn backends_bit_identical_on_clean_fabric() {
    let topo = CartTopo::new(&[8], true);
    let net = NetworkModel::theta_aries();
    let a = run_cluster_on(Backend::Thread, &topo, net, FaultConfig::off(), exchange_body);
    let b = run_cluster_on(Backend::Event, &topo, net, FaultConfig::off(), exchange_body);
    for (rank, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            fingerprint(&ra.0, ra.1),
            fingerprint(&rb.0, rb.1),
            "rank {rank} diverged between backends"
        );
    }
}

#[test]
fn backends_bit_identical_under_chaos() {
    // Same seeded fault plan on both backends: drops force the
    // timeout/retry machinery through completely different blocking
    // implementations, and the outcome must still match bit-for-bit.
    let topo = CartTopo::new(&[4], true);
    let net = NetworkModel::instant();
    let faults = FaultConfig::parse("7,0.3,0.1,0.2").unwrap();
    // Lockstep steps (barrier per step) keep the *thread* backend
    // deterministic: a receive then only times out when its message was
    // really dropped, never because a peer is still catching up on its
    // own earlier timeouts. That is the determinism contract the repo's
    // exchange protocols follow, and under it the virtual-clock expiry
    // (event) and the wall-clock expiry (thread) select the same set.
    let body = |ctx: &mut netsim::RankCtx<'_>| {
        ctx.set_recv_timeout(Some(Duration::from_millis(500)));
        let size = ctx.size();
        let rank = ctx.rank();
        let right = (rank + 1) % size;
        let left = (rank + size - 1) % size;
        let mut outcomes = Vec::new();
        for step in 0..4u64 {
            let h = ctx.irecv(left, step).unwrap();
            ctx.isend(right, step, &[rank as f64, step as f64]).unwrap();
            let mut buf = [0.0; 2];
            match ctx.waitall_into(&[h], &mut [&mut buf[..]]) {
                Ok(()) => outcomes.push((buf[0].to_bits(), buf[1].to_bits(), 0u8)),
                Err(NetsimError::Timeout { .. }) => outcomes.push((0, 0, 1)),
                Err(e) => panic!("unexpected error: {e}"),
            }
            ctx.drain_mailbox(left, step);
            ctx.barrier();
        }
        (outcomes, ctx.fault_stats().total())
    };
    let a = run_cluster_on(Backend::Thread, &topo, net, faults, body);
    let b = run_cluster_on(Backend::Event, &topo, net, faults, body);
    assert!(a.iter().any(|(_, f)| *f > 0), "chaos plan must inject something");
    assert_eq!(a, b, "chaos outcomes diverged between backends");
}

#[test]
fn event_backend_virtual_timeouts_skip_real_waiting() {
    // Every message dropped + a 30s receive deadline: the thread
    // backend would sleep 30 real seconds; the event backend's virtual
    // clock fires the deadline at quiescence, so the whole run must
    // finish in well under that.
    let topo = CartTopo::new(&[2], true);
    let faults = FaultConfig::parse("1,1.0,0.0,0.0").unwrap(); // drop everything
    let t0 = Instant::now();
    let out = run_cluster_on(Backend::Event, &topo, NetworkModel::instant(), faults, |ctx| {
        ctx.set_recv_timeout(Some(Duration::from_secs(30)));
        let peer = 1 - ctx.rank();
        let h = ctx.irecv(peer, 0).unwrap();
        ctx.isend(peer, 0, &[1.0]).unwrap();
        let mut buf = [0.0];
        matches!(
            ctx.waitall_into(&[h], &mut [&mut buf[..]]),
            Err(NetsimError::Timeout { .. })
        )
    });
    assert_eq!(out, vec![true, true]);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "virtual deadline must not wait wall-clock time (took {:?})",
        t0.elapsed()
    );
}

#[test]
fn event_backend_detects_deadlock_instead_of_hanging() {
    // Rank 1 waits for a message nobody sends, with NO deadline armed.
    // The thread backend would block forever; the event scheduler sees
    // quiescence with no armed deadline, declares deadlock, and wakes
    // the rank with a structured timeout.
    let topo = CartTopo::new(&[2], true);
    let out = run_cluster_on(
        Backend::Event,
        &topo,
        NetworkModel::instant(),
        FaultConfig::off(),
        |ctx| {
            if ctx.rank() == 1 {
                let h = ctx.irecv(0, 99).unwrap();
                let mut buf = [0.0];
                matches!(
                    ctx.waitall_into(&[h], &mut [&mut buf[..]]),
                    Err(NetsimError::Timeout { .. })
                )
            } else {
                true // rank 0 sends nothing and exits
            }
        },
    );
    assert_eq!(out, vec![true, true]);
}

#[test]
fn rank_panic_is_a_structured_error_on_both_backends() {
    let topo = CartTopo::new(&[4], true);
    for backend in [Backend::Thread, Backend::Event] {
        let err = try_run_cluster_on(
            backend,
            &topo,
            NetworkModel::instant(),
            FaultConfig::off(),
            |ctx| {
                if ctx.rank() == 2 {
                    panic!("injected failure on rank 2");
                }
                // Other ranks block on a message that never comes; the
                // abort must unwind them instead of hanging the run.
                let h = ctx.irecv(2, 0).unwrap();
                let mut buf = [0.0];
                let _ = ctx.waitall_into(&[h], &mut [&mut buf[..]]);
                ctx.rank()
            },
        )
        .unwrap_err();
        match err {
            NetsimError::RankPanicked { rank, payload } => {
                assert_eq!(rank, 2, "{backend}: wrong rank blamed");
                assert!(
                    payload.contains("injected failure on rank 2"),
                    "{backend}: payload lost: {payload:?}"
                );
            }
            other => panic!("{backend}: expected RankPanicked, got {other}"),
        }
    }
}

#[test]
fn event_backend_runs_4096_ranks() {
    // The scaling tentpole in miniature: a 4096-rank ring exchange
    // (and a cluster-wide barrier) must simply work on one machine.
    let n = 4096;
    let topo = CartTopo::new(&[n], true);
    let t0 = Instant::now();
    let out = run_cluster_on(
        Backend::Event,
        &topo,
        NetworkModel::theta_aries(),
        FaultConfig::off(),
        |ctx| {
            let size = ctx.size();
            let rank = ctx.rank();
            let right = (rank + 1) % size;
            let left = (rank + size - 1) % size;
            let h = ctx.irecv(left, 0).unwrap();
            ctx.isend(right, 0, &[rank as f64]).unwrap();
            let mut buf = [0.0];
            ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
            ctx.barrier();
            buf[0]
        },
    );
    assert_eq!(out.len(), n);
    for (rank, got) in out.iter().enumerate() {
        let left = (rank + n - 1) % n;
        assert_eq!(*got, left as f64);
    }
    // Generous budget: this takes well under a second in release mode.
    assert!(t0.elapsed() < Duration::from_secs(120), "4096 ranks took {:?}", t0.elapsed());
}

#[test]
fn backend_parse_and_env_contract() {
    assert_eq!(Backend::parse("thread"), Some(Backend::Thread));
    assert_eq!(Backend::parse("EVENT"), Some(Backend::Event));
    assert_eq!(Backend::parse("fiber"), None);
    assert_eq!(Backend::Event.label(), "event");
    assert_eq!("event".parse::<Backend>(), Ok(Backend::Event));
    assert!(Backend::event_supported() || cfg!(not(target_arch = "x86_64")));
}
