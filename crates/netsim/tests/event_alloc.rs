//! Zero-allocation guard for the event backend's steady-state hot path.
//!
//! The scaling claim rests on the scheduler doing O(1) amortized work —
//! and zero heap traffic — per park/wake/re-queue once warm: run
//! queues, deadline slots and barrier wait-lists are preallocated at
//! `Sched::new`, and the transport's message buffers come from the
//! per-rank pool. This test pins that down with a counting global
//! allocator, the same technique as the PR-4 telemetry guard: after a
//! warmup step, N further exchange steps (with barriers) must perform
//! exactly zero heap allocations across the whole process, and N
//! virtual-clock timeout expiries at most one each (the returned
//! `Timeout` error's diagnostic Vec — never the scheduler).

#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use netsim::{run_cluster_on, Backend, CartTopo, FaultConfig, NetsimError, NetworkModel};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Ring exchange with a barrier per step: parks and wakes flow through
/// the mailbox arm/notify path and the cluster barrier every step, and
/// none of it may allocate once warm. All ranks are inside the same
/// barrier-aligned window, so a flat global counter is meaningful.
#[test]
fn steady_state_exchange_step_is_allocation_free() {
    let n = 8;
    let topo = CartTopo::new(&[n], true);
    let flat = run_cluster_on(
        Backend::Event,
        &topo,
        NetworkModel::instant(),
        FaultConfig::off(),
        |ctx| {
            let size = ctx.size();
            let rank = ctx.rank();
            let right = (rank + 1) % size;
            let left = (rank + size - 1) % size;
            let mut buf = [0.0f64; 4];
            let payload = [rank as f64; 4];
            // Fixed tag, as the exchange engines use (one tag per
            // neighbor direction): the mailbox key and its queue exist
            // after the first step and are reused forever after.
            let mut step = || {
                let h = ctx.irecv(left, 7).unwrap();
                ctx.isend(right, 7, &payload).unwrap();
                ctx.waitall_into(&[h], &mut [&mut buf[..]]).unwrap();
                ctx.barrier();
            };
            // Warm: first sends populate the buffer pools and mailbox
            // slots, the barrier wait-list grows to capacity.
            for _ in 0..3 {
                step();
            }
            let before = ALLOCS.load(Ordering::Relaxed);
            for _ in 0..20 {
                step();
            }
            let after = ALLOCS.load(Ordering::Relaxed);
            after - before
        },
    );
    for (rank, leaked) in flat.iter().enumerate() {
        assert_eq!(
            *leaked, 0,
            "rank {rank}: steady-state exchange allocated {leaked} times in 20 steps"
        );
    }
}

/// Virtual-clock expiry path: a rank repeatedly times out on a message
/// nobody sends. Each cycle parks with a deadline, hits quiescence,
/// expires, and re-queues — the deadline slot machinery must not touch
/// the heap either. (The heap-based design this replaced grew one
/// entry per armed timeout for the life of the run.)
#[test]
fn steady_state_timeout_expiry_is_allocation_free() {
    let topo = CartTopo::new(&[2], true);
    static WARM: AtomicBool = AtomicBool::new(false);
    static LEAKED: AtomicU64 = AtomicU64::new(0);
    WARM.store(false, Ordering::SeqCst);
    run_cluster_on(
        Backend::Event,
        &topo,
        NetworkModel::instant(),
        FaultConfig::off(),
        |ctx| {
            ctx.set_recv_timeout(Some(Duration::from_secs(30)));
            if ctx.rank() == 1 {
                return; // sends nothing; rank 0's receives all expire
            }
            let mut buf = [0.0f64];
            let mut expire_once = || {
                let h = ctx.irecv(1, 7).unwrap();
                match ctx.waitall_into(&[h], &mut [&mut buf[..]]) {
                    Err(NetsimError::Timeout { .. }) => {}
                    other => panic!("expected timeout, got {other:?}"),
                }
                ctx.drain_mailbox(1, 7);
            };
            for _ in 0..3 {
                expire_once();
            }
            WARM.store(true, Ordering::SeqCst);
            let before = ALLOCS.load(Ordering::Relaxed);
            for _ in 0..10 {
                expire_once();
            }
            LEAKED.store(ALLOCS.load(Ordering::Relaxed) - before, Ordering::SeqCst);
        },
    );
    assert!(WARM.load(Ordering::SeqCst), "warmup must have run");
    let leaked = LEAKED.load(Ordering::SeqCst);
    // Each timed-out waitall returns `NetsimError::Timeout` whose
    // `pending` diagnostic Vec is one unavoidable error-path allocation
    // (identical on the thread backend). The scheduler's own
    // park → quiescence → expire → re-queue cycle must contribute zero.
    assert!(
        leaked <= 10,
        "timeout expiry allocated {leaked} times in 10 cycles \
         (budget: 1 Timeout error per cycle, 0 from the scheduler)"
    );
}
